// Storage-layer tests for the arena-backed columnar store (DESIGN.md §13):
// pager spill/cache behavior, segment-boundary round-trips, mutation
// (RemoveRows/Truncate/SetCell) property tests against a plain-vector
// reference model, the legacy-backend equivalence contract, and the
// zero-column num_rows regression.
#include "relational/column_store.h"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "relational/pager.h"
#include "relational/table.h"
#include "relational/value.h"

namespace mcsm::relational {
namespace {

// Tiny segments so a few dozen short rows already cross several segment
// (and page) boundaries — every boundary case runs in milliseconds.
constexpr size_t kTinySegment = 64;

TableOptions Columnar(size_t segment_bytes = 0) {
  TableOptions o;
  o.use_legacy_store = false;
  o.segment_bytes = segment_bytes;
  return o;
}

TableOptions Paged(uint64_t budget, size_t segment_bytes = kTinySegment) {
  TableOptions o;
  o.page_budget_bytes = budget;
  o.segment_bytes = segment_bytes;
  return o;
}

TableOptions Legacy() {
  TableOptions o;
  o.use_legacy_store = true;
  return o;
}

// ---------------------------------------------------------------------------
// Pager unit tests.

TEST(PagerTest, WriteLoadRoundTrip) {
  auto pager = Pager::Create(1 << 20);
  ASSERT_TRUE(pager.ok()) << pager.status();
  const std::string a(100, 'a');
  const std::string b = "short";
  auto ida = (*pager)->Write(a.data(), a.size());
  auto idb = (*pager)->Write(b.data(), b.size());
  ASSERT_TRUE(ida.ok() && idb.ok());
  EXPECT_NE(*ida, *idb);
  auto pa = (*pager)->Load(*ida);
  auto pb = (*pager)->Load(*idb);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(std::string((*pa)->data(), (*pa)->size()), a);
  EXPECT_EQ(std::string((*pb)->data(), (*pb)->size()), b);
  EXPECT_EQ((*pager)->PageBytes(*ida), a.size());
}

TEST(PagerTest, ZeroBudgetCachesNothingButStillReads) {
  auto pager = Pager::Create(0);
  ASSERT_TRUE(pager.ok()) << pager.status();
  const std::string payload = "spilled straight to disk";
  auto id = (*pager)->Write(payload.data(), payload.size());
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE((*pager)->Resident(*id));
  for (int i = 0; i < 3; ++i) {
    auto pin = (*pager)->Load(*id);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(std::string((*pin)->data(), (*pin)->size()), payload);
  }
  PagerStats stats = (*pager)->Stats();
  EXPECT_EQ(stats.resident_pages, 0u);
  EXPECT_GE(stats.cache_misses, 3u);
}

TEST(PagerTest, BudgetEvictsLruButPinsKeepBytesAlive) {
  // Budget of ~2 pages; writing 4 pages must evict the oldest.
  auto pager = Pager::Create(200);
  ASSERT_TRUE(pager.ok()) << pager.status();
  std::vector<uint32_t> ids;
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.emplace_back(90, static_cast<char>('a' + i));
    auto id = (*pager)->Write(payloads.back().data(), payloads.back().size());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  PagerStats stats = (*pager)->Stats();
  EXPECT_EQ(stats.spilled_pages, 4u);
  EXPECT_LE(stats.resident_bytes, 200u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_FALSE((*pager)->Resident(ids[0]));  // oldest got evicted

  // A pin taken before eviction keeps its bytes valid while the cache churns.
  auto pinned = (*pager)->Load(ids[0]);
  ASSERT_TRUE(pinned.ok());
  std::string_view held((*pinned)->data(), (*pinned)->size());
  for (int round = 0; round < 3; ++round) {
    for (uint32_t id : ids) ASSERT_TRUE((*pager)->Load(id).ok());
  }
  EXPECT_EQ(held, payloads[0]);
  EXPECT_TRUE((*pager)->first_error().ok());
}

TEST(PagerSourceTest, LazyCreationAndSharing) {
  PagerSource source(1 << 16);
  EXPECT_EQ(source.TryGet(), nullptr);  // no spill file until first use
  auto pager = source.GetOrCreate();
  ASSERT_NE(pager, nullptr);
  EXPECT_EQ(source.GetOrCreate(), pager);  // one pager per source
  EXPECT_TRUE(source.status().ok());
}

// ---------------------------------------------------------------------------
// Segment-boundary round-trips.

TEST(ColumnStoreTest, AppendRoundTripAcrossSegmentBoundaries) {
  Table t = Table::WithTextColumns({"a"}, Columnar(kTinySegment));
  std::vector<std::string> expected;
  Rng rng(7);
  for (size_t i = 0; i < 300; ++i) {
    // Mix of short values, empty strings and values larger than a whole
    // segment (which must get a segment of their own).
    size_t len = rng.Bernoulli(0.05) ? kTinySegment * 2 + rng.Uniform(40)
                                     : rng.Uniform(20);
    expected.push_back(rng.RandomString(len, "abcdefgh"));
    ASSERT_TRUE(t.AppendTextRow({expected.back()}).ok());
  }
  ASSERT_EQ(t.num_rows(), expected.size());
  TableStats stats = t.Stats();
  EXPECT_GT(stats.resident_pages, 2u);  // really crossed segment boundaries
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(t.TextAt(r, 0).view(), expected[r]) << "row " << r;
  }
}

TEST(ColumnStoreTest, PagedAppendSpillsAndReadsBack) {
  // Budget far below the payload: most sealed segments must live on disk.
  Table t = Table::WithTextColumns({"a"}, Paged(/*budget=*/128));
  std::vector<std::string> expected;
  Rng rng(11);
  for (size_t i = 0; i < 400; ++i) {
    expected.push_back(rng.RandomString(8 + rng.Uniform(12), "pqrstuvw"));
    ASSERT_TRUE(t.AppendTextRow({expected.back()}).ok());
  }
  TableStats stats = t.Stats();
  EXPECT_EQ(stats.encoding, "columnar+paged");
  EXPECT_GT(stats.spilled_pages, 0u) << "budget never forced a spill";
  EXPECT_GT(stats.spilled_bytes, 0u);
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(t.TextAt(r, 0).view(), expected[r]) << "row " << r;
  }
  EXPECT_TRUE(t.storage_status().ok());
}

TEST(ColumnStoreTest, EncodingNames) {
  EXPECT_EQ(Table::WithTextColumns({"a"}, Legacy()).Stats().encoding,
            "legacy");
  EXPECT_EQ(Table::WithTextColumns({"a"}, Columnar()).Stats().encoding,
            "columnar");
  EXPECT_EQ(Table::WithTextColumns({"a"}, Paged(1024)).Stats().encoding,
            "columnar+paged");
}

// ---------------------------------------------------------------------------
// Mutation property tests against a reference model.

// Reference model: plain vector of optional-free strings ("" = NULL is not
// distinguished here because these columns never insert NULLs).
struct Model {
  std::vector<std::string> rows;
};

void CheckAgainstModel(const Table& t, const Model& m) {
  ASSERT_EQ(t.num_rows(), m.rows.size());
  for (size_t r = 0; r < m.rows.size(); ++r) {
    EXPECT_EQ(t.TextAt(r, 0).view(), m.rows[r]) << "row " << r;
  }
}

class MutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationProperty, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  // Three backends driven by the same op sequence must agree with the model
  // (and therefore with each other) after every step.
  std::vector<Table> tables;
  tables.push_back(Table::WithTextColumns({"a"}, Legacy()));
  tables.push_back(Table::WithTextColumns({"a"}, Columnar(kTinySegment)));
  tables.push_back(Table::WithTextColumns({"a"}, Paged(/*budget=*/256)));
  Model model;

  for (int step = 0; step < 120; ++step) {
    double dice = rng.UniformDouble();
    if (dice < 0.55 || model.rows.empty()) {
      std::string v = rng.RandomString(rng.Uniform(24), "abcdefghij");
      model.rows.push_back(v);
      for (Table& t : tables) ASSERT_TRUE(t.AppendTextRow({v}).ok());
    } else if (dice < 0.75) {
      size_t row = rng.Uniform(model.rows.size());
      std::string v = rng.RandomString(rng.Uniform(30), "klmnopqr");
      model.rows[row] = v;
      for (Table& t : tables) {
        ASSERT_TRUE(t.SetCell(row, 0, Value(v)).ok());
      }
    } else if (dice < 0.9) {
      // Remove a random subset (possibly with duplicates/out-of-range).
      std::vector<size_t> doomed;
      size_t count = 1 + rng.Uniform(4);
      for (size_t i = 0; i < count; ++i) {
        doomed.push_back(rng.Uniform(model.rows.size() + 2));  // may be OOR
      }
      std::vector<size_t> unique = doomed;
      std::sort(unique.begin(), unique.end());
      unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
      for (auto it = unique.rbegin(); it != unique.rend(); ++it) {
        if (*it < model.rows.size()) {
          model.rows.erase(model.rows.begin() + static_cast<long>(*it));
        }
      }
      for (Table& t : tables) ASSERT_TRUE(t.RemoveRows(doomed).ok());
    } else {
      size_t n = rng.Uniform(model.rows.size() + 1);
      model.rows.resize(std::min(model.rows.size(), n));
      for (Table& t : tables) t.Truncate(n);
    }
    for (Table& t : tables) CheckAgainstModel(t, model);
  }
  // The paged run must actually have paged (the budget is far below the
  // churn) and stayed healthy.
  EXPECT_TRUE(tables[2].storage_status().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ColumnStoreTest, RemoveRowsReclaimsAbandonedBytes) {
  Table t = Table::WithTextColumns({"a"}, Columnar(kTinySegment));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendTextRow({std::string(16, 'x')}).ok());
  }
  const uint64_t before = t.Stats().resident_bytes;
  std::vector<size_t> doomed;
  for (size_t r = 0; r < 180; ++r) doomed.push_back(r);
  ASSERT_TRUE(t.RemoveRows(doomed).ok());
  ASSERT_EQ(t.num_rows(), 20u);
  // Compaction rebuilt the segments: the survivors' payload is a fraction
  // of the original arena.
  EXPECT_LT(t.Stats().resident_bytes, before / 2);
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_EQ(t.TextAt(r, 0).view(), std::string(16, 'x'));
  }
}

// ---------------------------------------------------------------------------
// View API semantics.

TEST(ColumnViewTest, CursorAndPinnedColumnAgreeWithPointLookups) {
  Table t = Table::WithTextColumns({"a"}, Paged(/*budget=*/128));
  Rng rng(23);
  std::vector<std::string> expected;
  for (size_t i = 0; i < 250; ++i) {
    expected.push_back(rng.RandomString(6 + rng.Uniform(10), "abcdef"));
    ASSERT_TRUE(t.AppendTextRow({expected.back()}).ok());
  }
  const ColumnView view = t.Column(0);
  TextCursor cursor(view);
  const PinnedColumn pinned(view);
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(cursor.Get(r), expected[r]);
    EXPECT_EQ(pinned.at(r), expected[r]);
    EXPECT_EQ(t.TextAt(r, 0).view(), expected[r]);
  }
  // PinnedColumn views are all simultaneously valid.
  std::vector<std::string_view> held;
  for (size_t r = 0; r < expected.size(); ++r) held.push_back(pinned.at(r));
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(held[r], expected[r]);
  }
}

TEST(ColumnViewTest, GetTextsBatchMatchesPointLookups) {
  Table t = Table::WithTextColumns({"a"}, Columnar(kTinySegment));
  std::vector<std::string> expected;
  for (size_t i = 0; i < 120; ++i) {
    expected.push_back("v" + std::to_string(i * i));
    ASSERT_TRUE(t.AppendTextRow({expected.back()}).ok());
  }
  std::vector<uint32_t> rows = {0, 5, 5, 119, 64, 1};
  std::vector<TextView> out;
  t.Column(0).GetTexts(rows.data(), rows.size(), &out);
  ASSERT_EQ(out.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i].view(), expected[rows[i]]);
  }
}

TEST(ColumnViewTest, NullAndNumericSemantics) {
  for (const TableOptions& opts : {Legacy(), Columnar(kTinySegment)}) {
    Table t{Schema({{"s", ColumnType::kText},
                    {"n", ColumnType::kInteger},
                    {"r", ColumnType::kReal}}),
            opts};
    ASSERT_TRUE(
        t.AppendRow({Value("x"), Value(int64_t{7}), Value(1.5)}).ok());
    ASSERT_TRUE(t.AppendRow({Value::MakeNull(), Value::MakeNull(),
                             Value::MakeNull()}).ok());
    EXPECT_TRUE(t.Column(0).IsText(0));
    EXPECT_FALSE(t.Column(0).IsText(1));   // NULL is not text
    EXPECT_FALSE(t.Column(1).IsText(0));   // INTEGER is not text
    EXPECT_EQ(t.Column(1).GetInt(0), 7);
    EXPECT_EQ(t.Column(2).GetReal(0), 1.5);
    EXPECT_TRUE(t.IsNull(1, 0));
    EXPECT_EQ(t.TextAt(1, 0).view(), "");       // NULL -> empty view
    EXPECT_EQ(t.TextAt(0, 1).view(), "");       // non-text -> empty view
    EXPECT_TRUE(t.ValueAt(1, 2).is_null());
    EXPECT_EQ(t.ValueAt(0, 1), Value(int64_t{7}));
  }
}

// ---------------------------------------------------------------------------
// Regressions.

TEST(TableTest, ZeroColumnSchemaCountsRows) {
  // Regression: num_rows() used to derive from column 0 and reported 0
  // for zero-column schemas no matter how many rows were appended.
  for (const TableOptions& opts : {Legacy(), Columnar()}) {
    Table t{Schema(std::vector<ColumnDef>{}), opts};
    EXPECT_EQ(t.num_rows(), 0u);
    ASSERT_TRUE(t.AppendRow({}).ok());
    ASSERT_TRUE(t.AppendRow({}).ok());
    EXPECT_EQ(t.num_rows(), 2u);
    t.Truncate(1);
    EXPECT_EQ(t.num_rows(), 1u);
    ASSERT_TRUE(t.RemoveRows({0}).ok());
    EXPECT_EQ(t.num_rows(), 0u);
  }
}

TEST(TableTest, CopiedTablesShareSegmentsAndDivergeIndependently) {
  Table a = Table::WithTextColumns({"a"}, Paged(/*budget=*/128));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.AppendTextRow({"row" + std::to_string(i)}).ok());
  }
  Table b = a;  // shares sealed segments + the spill file
  ASSERT_TRUE(a.AppendTextRow({"only-in-a"}).ok());
  ASSERT_TRUE(b.RemoveRows({0}).ok());
  EXPECT_EQ(a.num_rows(), 101u);
  EXPECT_EQ(b.num_rows(), 99u);
  EXPECT_EQ(a.TextAt(100, 0).view(), "only-in-a");
  EXPECT_EQ(a.TextAt(0, 0).view(), "row0");
  EXPECT_EQ(b.TextAt(0, 0).view(), "row1");
}

// ---------------------------------------------------------------------------
// Failpoint chaos for the pager sites.

class PagerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ReloadFromEnv(); }
  void TearDown() override { failpoint::ReloadFromEnv(); }
};

TEST_F(PagerChaosTest, WriteFaultFailsIngestLoudly) {
  ASSERT_TRUE(failpoint::Arm(failpoint::kPagerWrite, "error:injected").ok());
  Table t = Table::WithTextColumns({"a"}, Paged(/*budget=*/128));
  Status failure = Status::OK();
  for (int i = 0; i < 200 && failure.ok(); ++i) {
    failure = t.AppendTextRow({std::string(16, 'y')});
  }
  // The first spill attempt must surface the injected error to the caller.
  EXPECT_TRUE(failure.IsInternal()) << failure.ToString();
}

TEST_F(PagerChaosTest, ReadFaultDegradesToEmptyViewsAndLatches) {
  // A 1-byte budget: paging is on (0 would mean "unpaged") but nothing
  // stays cached, so every sealed-segment read faults to disk.
  Table t = Table::WithTextColumns({"a"}, Paged(/*budget=*/1));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendTextRow({std::string(16, 'z')}).ok());
  }
  ASSERT_GT(t.Stats().spilled_pages, 0u);
  ASSERT_TRUE(failpoint::Arm(failpoint::kPagerRead, "error:injected").ok());
  // Reads never crash: spilled rows degrade to empty views...
  size_t empty = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.TextAt(r, 0).view().empty()) ++empty;
  }
  EXPECT_GT(empty, 0u);
  // ...and the failure stays observable after the fact.
  EXPECT_FALSE(t.storage_status().ok());
  failpoint::DisarmAll();
  // With the fault gone, the data is still intact on disk.
  EXPECT_EQ(t.TextAt(0, 0).view(), std::string(16, 'z'));
}

}  // namespace
}  // namespace mcsm::relational
