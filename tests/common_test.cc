#include <gtest/gtest.h>

#include "common/env.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mcsm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::InvalidArgument("bad");
  Status copy = st;
  EXPECT_TRUE(copy.IsInvalidArgument());
  EXPECT_EQ(copy.message(), "bad");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterViaMacro(int v) {
  MCSM_ASSIGN_OR_RETURN(int half, HalveEven(v));
  MCSM_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_TRUE(QuarterViaMacro(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterViaMacro(7).status().IsInvalidArgument());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) hits[rng.Uniform(6)]++;
  for (int h : hits) {
    EXPECT_GT(h, 700);
    EXPECT_LT(h, 1300);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, ZeroPad) {
  EXPECT_EQ(ZeroPad(7, 2), "07");
  EXPECT_EQ(ZeroPad(123, 2), "123");
  EXPECT_EQ(ZeroPad(0, 4), "0000");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

TEST(StringUtilTest, IsAlnumAscii) {
  EXPECT_TRUE(IsAlnumAscii('a'));
  EXPECT_TRUE(IsAlnumAscii('Z'));
  EXPECT_TRUE(IsAlnumAscii('5'));
  EXPECT_FALSE(IsAlnumAscii(' '));
  EXPECT_FALSE(IsAlnumAscii(':'));
  EXPECT_FALSE(IsAlnumAscii('-'));
}

TEST(EnvTest, FallbacksWhenUnset) {
  unsetenv("MCSM_TEST_VAR");
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCSM_TEST_VAR", 1.5), 1.5);
  EXPECT_EQ(GetEnvInt("MCSM_TEST_VAR", 42), 42);
  EXPECT_EQ(GetEnvString("MCSM_TEST_VAR", "d"), "d");
}

TEST(EnvTest, ParsesWhenSet) {
  setenv("MCSM_TEST_VAR", "2.75", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCSM_TEST_VAR", 0), 2.75);
  setenv("MCSM_TEST_VAR", "17", 1);
  EXPECT_EQ(GetEnvInt("MCSM_TEST_VAR", 0), 17);
  unsetenv("MCSM_TEST_VAR");
}

}  // namespace
}  // namespace mcsm
