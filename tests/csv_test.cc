#include "relational/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace mcsm::relational {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  auto table = ReadCsv("first,last\nrobert,kerry\nkyle,norman\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().column(0).name, "first");
  EXPECT_EQ(table->TextAt(1, 1).view(), "norman");
}

TEST(CsvTest, HandlesQuotingAndEscapes) {
  auto table = ReadCsv("name,quote\n\"smith, jr\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->TextAt(0, 0).view(), "smith, jr");
  EXPECT_EQ(table->TextAt(0, 1).view(), "he said \"hi\"");
}

TEST(CsvTest, QuotedFieldMaySpanLines) {
  auto table = ReadCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->TextAt(0, 0).view(), "line1\nline2");
}

TEST(CsvTest, Utf8BomStripped) {
  // Spreadsheet exports prepend EF BB BF; the first column name must not
  // absorb it.
  auto table = ReadCsv("\xEF\xBB\xBF" "first,last\nrobert,kerry\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->schema().column(0).name, "first");
  EXPECT_TRUE(table->schema().FindColumn("first").has_value());
  EXPECT_EQ(table->TextAt(0, 0).view(), "robert");
  // A BOM alone is still an empty file.
  EXPECT_FALSE(ReadCsv("\xEF\xBB\xBF").ok());
}

TEST(CsvTest, CrlfLineEndings) {
  auto table = ReadCsv("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->TextAt(1, 1).view(), "4");
}

TEST(CsvTest, EmptyUnquotedFieldsBecomeNull) {
  auto table = ReadCsv("a,b\nx,\n,y\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_TRUE(table->ValueAt(0, 1).is_null());
  EXPECT_TRUE(table->ValueAt(1, 0).is_null());
  // Quoted empty stays an empty string.
  auto quoted = ReadCsv("a,b\n\"\",y\n");
  ASSERT_TRUE(quoted.ok());
  ASSERT_TRUE(quoted->ValueAt(0, 0).is_text());
  EXPECT_EQ(quoted->ValueAt(0, 0).text(), "");
}

TEST(CsvTest, EmptyAsNullCanBeDisabled) {
  CsvOptions options;
  options.empty_as_null = false;
  auto table = ReadCsv("a,b\nx,\n", options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->ValueAt(0, 1).is_text());
  EXPECT_EQ(table->ValueAt(0, 1).text(), "");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = ReadCsv("a;b\n1,5;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->TextAt(0, 0).view(), "1,5");
}

TEST(CsvTest, MissingNewlineAtEof) {
  auto table = ReadCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->TextAt(0, 1).view(), "2");
}

TEST(CsvTest, BlankLinesSkipped) {
  auto table = ReadCsv("a,b\n1,2\n\n3,4\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, Errors) {
  EXPECT_TRUE(ReadCsv("").status().IsInvalidArgument());
  EXPECT_TRUE(ReadCsv("a,b\n\"unterminated").status().IsParseError());
  EXPECT_TRUE(ReadCsv("a,b\n1,2,3\n").status().IsParseError());
  EXPECT_TRUE(ReadCsv("a,b\nx\"y,2\n").status().IsParseError());
  EXPECT_TRUE(ReadCsv(",b\n").status().IsInvalidArgument());
}

TEST(CsvTest, RoundTrip) {
  Table t = Table::WithTextColumns({"name", "note"});
  ASSERT_TRUE(t.AppendTextRow({"smith, jr", "said \"hi\""}).ok());
  ASSERT_TRUE(t.AppendRow({Value("plain"), Value::MakeNull()}).ok());
  ASSERT_TRUE(t.AppendTextRow({"multi\nline", ""}).ok());

  std::string csv = WriteCsv(t);
  auto back = ReadCsv(csv);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back->ValueAt(r, c), t.ValueAt(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Table t = Table::WithTextColumns({"a"});
  ASSERT_TRUE(t.AppendTextRow({"hello"}).ok());
  std::string path = ::testing::TempDir() + "/mcsm_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->TextAt(0, 0).view(), "hello");
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile("/nonexistent/file.csv").status().IsNotFound());
}

CsvOptions Permissive() {
  CsvOptions o;
  o.permissive = true;
  return o;
}

TEST(CsvPermissiveTest, SkipsRowsWithWrongFieldCount) {
  CsvReadReport report;
  auto table = ReadCsv("a,b\n1,2\nonly_one\n3,4,5\n6,7\n", Permissive(),
                       &report);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->TextAt(0, 0).view(), "1");
  EXPECT_EQ(table->TextAt(1, 1).view(), "7");
  EXPECT_EQ(report.rows_kept, 2u);
  EXPECT_EQ(report.rows_dropped, 2u);
  ASSERT_EQ(report.first_errors.size(), 2u);
  EXPECT_NE(report.first_errors[0].find("fields"), std::string::npos);
}

TEST(CsvPermissiveTest, ResyncsAfterStrayQuote) {
  // Row 2 has a stray quote mid-field; permissive mode drops it and resumes
  // on the next line.
  CsvReadReport report;
  auto table =
      ReadCsv("a,b\nx,y\nbad\"row,z\np,q\n", Permissive(), &report);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->TextAt(1, 0).view(), "p");
  EXPECT_EQ(report.rows_dropped, 1u);
  EXPECT_NE(report.first_errors[0].find("quote"), std::string::npos);
}

TEST(CsvPermissiveTest, UnterminatedQuoteAtEofIsDroppedNotFatal) {
  CsvReadReport report;
  auto table = ReadCsv("a,b\nx,y\n\"never closed,z\n", Permissive(), &report);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(report.rows_kept, 1u);
  EXPECT_EQ(report.rows_dropped, 1u);
}

TEST(CsvPermissiveTest, HeaderErrorsStayFatal) {
  // Without a parseable header there is no schema to keep rows under, so
  // permissive mode still rejects the file.
  EXPECT_FALSE(ReadCsv("\"unterminated\n1,2\n", Permissive()).ok());
  EXPECT_FALSE(ReadCsv("", Permissive()).ok());
  EXPECT_FALSE(ReadCsv("a,,c\n1,2,3\n", Permissive()).ok());
}

TEST(CsvPermissiveTest, ErrorExamplesAreCapped) {
  std::string text = "a,b\n";
  for (int i = 0; i < 20; ++i) text += "short\n";
  CsvReadReport report;
  auto table = ReadCsv(text, Permissive(), &report);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(report.rows_dropped, 20u);
  EXPECT_EQ(report.first_errors.size(), CsvReadReport::kMaxErrorExamples);
}

TEST(CsvPermissiveTest, CleanInputReportsNoDrops) {
  CsvReadReport report;
  auto table = ReadCsv("a,b\n1,2\n3,4\n", Permissive(), &report);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(report.rows_kept, table->num_rows());
  EXPECT_EQ(report.rows_dropped, 0u);
  EXPECT_TRUE(report.first_errors.empty());
}

TEST(CsvPermissiveTest, StrictModeStillFailsAndReportIsReset) {
  CsvReadReport report;
  report.rows_kept = 99;  // stale values must be cleared by ReadCsv
  auto table = ReadCsv("a,b\nonly_one\n", CsvOptions{}, &report);
  EXPECT_TRUE(table.status().IsParseError());
  EXPECT_EQ(report.rows_kept, 0u);
}

}  // namespace
}  // namespace mcsm::relational
