#include "datagen/datasets.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/corpus.h"
#include "datagen/noise.h"

namespace mcsm::datagen {
namespace {

TEST(CorpusTest, NamePoolsNonEmptyAndLowercase) {
  for (const auto* pool : {&FirstNames(), &LastNames(), &StreetNames(),
                           &TitleWords()}) {
    ASSERT_GT(pool->size(), 20u);
    for (const auto& n : *pool) {
      for (char c : n) {
        EXPECT_TRUE((c >= 'a' && c <= 'z')) << n;
      }
    }
  }
}

TEST(CorpusTest, DistinctNamePoolHasRequestedSize) {
  Rng rng(1);
  auto pool = DistinctNamePool(rng, 5000, FirstNames());
  EXPECT_EQ(pool.size(), 5000u);
  std::set<std::string> unique(pool.begin(), pool.end());
  EXPECT_EQ(unique.size(), 5000u);
}

TEST(CorpusTest, SyllableNamesAreShortAndAlphabetic) {
  Rng rng(2);
  double total = 0;
  for (int i = 0; i < 500; ++i) {
    std::string n = SyllableName(rng);
    EXPECT_GE(n.size(), 2u);
    EXPECT_LE(n.size(), 14u);
    total += n.size();
  }
  // Average close to real-world name lengths (the sigma calibration relies
  // on name columns averaging ~5-7 characters).
  EXPECT_GT(total / 500, 4.0);
  EXPECT_LT(total / 500, 8.0);
}

TEST(NoiseTest, Rfc2822TimestampShape) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string ts = RandomRfc2822Timestamp(rng);
    // e.g. "Mon, 15 Aug 2005 14:31:25 +0000"
    ASSERT_EQ(ts.size(), 31u) << ts;
    EXPECT_EQ(ts[3], ',');
    EXPECT_EQ(ts.substr(ts.size() - 5), "+0000");
    EXPECT_EQ(ts[19], ':' + 0) << ts;
  }
}

TEST(NoiseTest, TimeOfDayZeroPadded) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    TimeOfDay t = RandomTimeOfDay(rng);
    ASSERT_EQ(t.hours.size(), 2u);
    ASSERT_EQ(t.minutes.size(), 2u);
    ASSERT_EQ(t.seconds.size(), 2u);
    EXPECT_LT(std::stoi(t.hours), 24);
    EXPECT_LT(std::stoi(t.minutes), 60);
    EXPECT_LT(std::stoi(t.seconds), 60);
  }
}

TEST(NoiseTest, DatesValid) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Date d = RandomDate(rng);
    EXPECT_GE(d.month, 1);
    EXPECT_LE(d.month, 12);
    EXPECT_GE(d.day, 1);
    EXPECT_LE(d.day, 31);
  }
}

TEST(NoiseTest, NoiseRowMatchesColumnNames) {
  Rng rng(6);
  EXPECT_EQ(NoiseRow(rng).size(), NoiseColumnNames().size());
}

TEST(DatasetTest, GeneratorsAreDeterministic) {
  UserIdOptions o;
  o.rows = 200;
  auto a = MakeUserIdDataset(o);
  auto b = MakeUserIdDataset(o);
  ASSERT_EQ(a.source.num_rows(), b.source.num_rows());
  for (size_t r = 0; r < a.source.num_rows(); ++r) {
    for (size_t c = 0; c < a.source.num_columns(); ++c) {
      EXPECT_EQ(a.source.ValueAt(r, c), b.source.ValueAt(r, c));
    }
  }
  for (size_t r = 0; r < a.target.num_rows(); ++r) {
    EXPECT_EQ(a.target.ValueAt(r, 0), b.target.ValueAt(r, 0));
  }
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  UserIdOptions o1, o2;
  o1.rows = o2.rows = 100;
  o2.seed = 999;
  auto a = MakeUserIdDataset(o1);
  auto b = MakeUserIdDataset(o2);
  int differing = 0;
  for (size_t r = 0; r < 100; ++r) {
    if (!(a.source.ValueAt(r, 0) == b.source.ValueAt(r, 0))) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(DatasetTest, UserIdHasExpectedStructure) {
  UserIdOptions o;
  o.rows = 1000;
  auto data = MakeUserIdDataset(o);
  EXPECT_EQ(data.source.num_rows(), 1000u);
  EXPECT_EQ(data.target.num_rows(), 1000u);
  EXPECT_EQ(data.source.num_columns(), 7u);  // 3 names + 4 noise
  // Roughly half the logins follow first[1]+last.
  size_t dominant = 0;
  std::multiset<std::string> logins;
  for (size_t r = 0; r < data.target.num_rows(); ++r) {
    logins.insert(std::string(data.target.TextAt(r, 0).view()));
  }
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::string expected =
        std::string(data.source.TextAt(r, 0).view().substr(0, 1)) +
        std::string(data.source.TextAt(r, 2).view());
    auto it = logins.find(expected);
    if (it != logins.end()) {
      logins.erase(it);
      ++dominant;
    }
  }
  EXPECT_GT(dominant, 400u);
  EXPECT_LT(dominant, 700u);
}

TEST(DatasetTest, UserIdExtraRowsHaveNoTargets) {
  UserIdOptions o;
  o.rows = 100;
  o.extra_unmatched_rows = 40;
  auto data = MakeUserIdDataset(o);
  EXPECT_EQ(data.source.num_rows(), 140u);
  EXPECT_EQ(data.target.num_rows(), 100u);
}

TEST(DatasetTest, UserIdWithDatesAddsColumns) {
  UserIdOptions o;
  o.rows = 50;
  o.with_dates = true;
  auto data = MakeUserIdDataset(o);
  EXPECT_TRUE(data.source.schema().FindColumn("birth").has_value());
  EXPECT_TRUE(data.target.schema().FindColumn("dob").has_value());
  // birth is mm-dd-yyyy (10 chars), dob is mm/dd/yy (8 chars).
  EXPECT_EQ(data.source.TextAt(0, *data.source.schema().FindColumn("birth"))
                .size(),
            10u);
  EXPECT_EQ(data.target.TextAt(0, 1).view().size(), 8u);
}

TEST(DatasetTest, TimeTargetIsConcatenation) {
  TimeOptions o;
  o.rows = 300;
  auto data = MakeTimeDataset(o);
  std::multiset<std::string> times;
  for (size_t r = 0; r < data.target.num_rows(); ++r) {
    times.insert(std::string(data.target.TextAt(r, 0).view()));
  }
  // Every source row's hrs||mins||secs appears in the target.
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::string expected = std::string(data.source.TextAt(r, 2).view()) +
                           std::string(data.source.TextAt(r, 1).view()) +
                           std::string(data.source.TextAt(r, 0).view());
    auto it = times.find(expected);
    ASSERT_NE(it, times.end()) << expected;
    times.erase(it);
  }
  EXPECT_TRUE(times.empty());
}

TEST(DatasetTest, MergedNamesVariants) {
  MergedNamesOptions o;
  o.rows = 200;
  o.distinct_names = 50;
  auto plain = MakeMergedNamesDataset(o);
  EXPECT_EQ(plain.target.num_rows(), 200u);
  o.comma_separator = true;
  auto comma = MakeMergedNamesDataset(o);
  for (size_t r = 0; r < comma.target.num_rows(); ++r) {
    EXPECT_NE(comma.target.TextAt(r, 0).view().find(", "), std::string_view::npos);
  }
}

TEST(DatasetTest, CitationHasSeventeenColumns) {
  CitationOptions o;
  o.rows = 100;
  auto data = MakeCitationDataset(o);
  EXPECT_EQ(data.source.num_columns(), 17u);
  EXPECT_EQ(data.target.num_rows(), 100u);
  // citation = year || title || author1 for every record.
  std::multiset<std::string> citations;
  for (size_t r = 0; r < data.target.num_rows(); ++r) {
    citations.insert(std::string(data.target.TextAt(r, 0).view()));
  }
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::string expected = std::string(data.source.TextAt(r, 0).view()) +
                           std::string(data.source.TextAt(r, 1).view()) +
                           std::string(data.source.TextAt(r, 2).view());
    EXPECT_NE(citations.find(expected), citations.end());
  }
}

TEST(DatasetTest, CrossCitationOverlapCounts) {
  CrossCitationOptions o;
  o.source_rows = 500;
  o.target_rows = 1000;
  o.exact_overlap = 20;
  o.swapped_overlap = 10;
  auto data = MakeCrossCitationDataset(o);
  EXPECT_EQ(data.source.num_rows(), 500u);
  EXPECT_EQ(data.target.num_rows(), 1000u);

  std::multiset<std::string> citations;
  for (size_t r = 0; r < data.target.num_rows(); ++r) {
    citations.insert(std::string(data.target.TextAt(r, 0).view()));
  }
  size_t exact = 0, swapped = 0;
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::string year(data.source.TextAt(r, 0).view());
    std::string title(data.source.TextAt(r, 1).view());
    std::string a1(data.source.TextAt(r, 2).view());
    std::string a2(data.source.TextAt(r, 3).view());
    if (citations.count(year + title + a1) != 0) ++exact;
    if (!a2.empty() && citations.count(year + title + a2) != 0) ++swapped;
  }
  EXPECT_EQ(exact, 20u);
  EXPECT_EQ(swapped, 10u);
}

TEST(DatasetTest, DateFormatExpectedTranslationHolds) {
  DateFormatOptions o;
  o.rows = 150;
  auto data = MakeDateFormatDataset(o);
  std::multiset<std::string> targets;
  for (size_t r = 0; r < data.target.num_rows(); ++r) {
    targets.insert(std::string(data.target.TextAt(r, 0).view()));
  }
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::string d(data.source.TextAt(r, 0).view());  // yyyy/mm/dd
    std::string expected = d.substr(5, 2) + "/" + d.substr(8, 2) + "/" +
                           d.substr(0, 4);
    EXPECT_NE(targets.find(expected), targets.end()) << d;
  }
}

}  // namespace
}  // namespace mcsm::datagen
