#include "common/deadline.h"

#include <thread>

#include <gtest/gtest.h>

namespace mcsm {
namespace {

TEST(BudgetLimitsTest, DefaultIsUnlimited) {
  BudgetLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.wall_ms = 5;
  EXPECT_FALSE(limits.unlimited());
}

TEST(RunBudgetTest, UnlimitedNeverTrips) {
  RunBudget budget;
  EXPECT_TRUE(budget.ChargePostings(1'000'000));
  EXPECT_TRUE(budget.ChargePairs(1'000'000));
  EXPECT_TRUE(budget.ChargeFormulas(1'000'000));
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.trip(), BudgetTrip::kNone);
}

TEST(RunBudgetTest, CountersAccumulate) {
  RunBudget budget;
  budget.ChargePostings(10);
  budget.ChargePostings(5);
  budget.ChargePairs();
  budget.ChargeFormulas(3);
  EXPECT_EQ(budget.postings_scanned(), 15u);
  EXPECT_EQ(budget.pairs_aligned(), 1u);
  EXPECT_EQ(budget.candidate_formulas(), 3u);
}

TEST(RunBudgetTest, PostingsCapTrips) {
  BudgetLimits limits;
  limits.max_postings_scanned = 10;
  RunBudget budget(limits);
  EXPECT_TRUE(budget.ChargePostings(9));
  EXPECT_FALSE(budget.ChargePostings(5));
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.trip(), BudgetTrip::kPostings);
}

TEST(RunBudgetTest, PairsCapTrips) {
  BudgetLimits limits;
  limits.max_pairs_aligned = 2;
  RunBudget budget(limits);
  EXPECT_TRUE(budget.ChargePairs(2));
  EXPECT_FALSE(budget.ChargePairs());
  EXPECT_EQ(budget.trip(), BudgetTrip::kPairs);
}

TEST(RunBudgetTest, FormulasCapTrips) {
  BudgetLimits limits;
  limits.max_candidate_formulas = 4;
  RunBudget budget(limits);
  EXPECT_TRUE(budget.ChargeFormulas(3));
  EXPECT_FALSE(budget.ChargeFormulas(3));
  EXPECT_EQ(budget.trip(), BudgetTrip::kFormulas);
}

TEST(RunBudgetTest, ExhaustionIsSticky) {
  BudgetLimits limits;
  limits.max_pairs_aligned = 1;
  RunBudget budget(limits);
  EXPECT_FALSE(budget.ChargePairs(5));
  // A later trip on another axis must not overwrite the first.
  limits.max_postings_scanned = 1;
  EXPECT_FALSE(budget.ChargePostings(5));
  EXPECT_EQ(budget.trip(), BudgetTrip::kPairs);
  EXPECT_TRUE(budget.Exhausted());
}

TEST(RunBudgetTest, WallClockDeadlineTrips) {
  RunBudget budget = RunBudget::ForMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.trip(), BudgetTrip::kWallClock);
}

TEST(RunBudgetTest, GenerousDeadlineDoesNotTrip) {
  RunBudget budget = RunBudget::ForMillis(60'000);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_TRUE(budget.ChargePostings(1));
}

TEST(RunBudgetTest, ConcurrentChargingLosesNoWorkAndTripsOneAxis) {
  // The search's workers charge the shared budget concurrently: the relaxed
  // counters must still account for every unit, and the sticky CAS must
  // record exactly one tripped axis.
  BudgetLimits limits;
  limits.max_postings_scanned = 1000;
  RunBudget budget(limits);
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        (void)budget.ChargePostings(1);
        (void)budget.ChargePairs();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(budget.postings_scanned(),
            static_cast<uint64_t>(kThreads) * kChargesPerThread);
  EXPECT_EQ(budget.pairs_aligned(),
            static_cast<uint64_t>(kThreads) * kChargesPerThread);
  EXPECT_TRUE(budget.Exhausted());
  // Only the postings axis has a cap, so it must be the recorded trip no
  // matter which thread crossed it.
  EXPECT_EQ(budget.trip(), BudgetTrip::kPostings);
}

TEST(RunBudgetTest, TripNames) {
  EXPECT_STREQ(BudgetTripName(BudgetTrip::kNone), "none");
  EXPECT_STREQ(BudgetTripName(BudgetTrip::kWallClock), "wall-clock");
  EXPECT_STREQ(BudgetTripName(BudgetTrip::kPostings), "postings");
  EXPECT_STREQ(BudgetTripName(BudgetTrip::kPairs), "pairs");
  EXPECT_STREQ(BudgetTripName(BudgetTrip::kFormulas), "formulas");
}

}  // namespace
}  // namespace mcsm
