#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::text {
namespace {

// Applies an edit script to `source` and returns the produced string; used
// to validate script correctness.
std::string ApplyScript(std::string_view source, std::string_view target,
                        const std::vector<EditStep>& script) {
  std::string out;
  for (const auto& step : script) {
    switch (step.op) {
      case EditOp::kMatch:
        EXPECT_EQ(source[step.source_pos], target[step.target_pos]);
        out.push_back(source[step.source_pos]);
        break;
      case EditOp::kReplace:
        out.push_back(target[step.target_pos]);
        break;
      case EditOp::kInsert:
        out.push_back(target[step.target_pos]);
        break;
      case EditOp::kDelete:
        break;
    }
  }
  return out;
}

int ScriptCost(const std::vector<EditStep>& script, const EditCosts& costs) {
  int total = 0;
  for (const auto& step : script) {
    switch (step.op) {
      case EditOp::kMatch:
        break;
      case EditOp::kReplace:
        total += costs.replace;
        break;
      case EditOp::kInsert:
        total += costs.insert;
        break;
      case EditOp::kDelete:
        total += costs.del;
        break;
    }
  }
  return total;
}

TEST(EditDistanceTest, ClassicCases) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(EditDistanceTest, PaperPair) {
  // "rhwarner" vs "warner": two insertions (Table 4's matrix).
  EXPECT_EQ(LevenshteinDistance("warner", "rhwarner"), 2);
}

TEST(EditDistanceTest, AsymmetricCosts) {
  EditCosts costs;
  costs.insert = 5;
  costs.del = 1;
  EXPECT_EQ(LevenshteinDistance("ab", "abc", costs), 5);  // one insert
  EXPECT_EQ(LevenshteinDistance("abc", "ab", costs), 1);  // one delete
}

TEST(EditDistanceTest, ScriptTransformsSourceIntoTarget) {
  auto script = EditScript("warner", "rhwarner");
  EXPECT_EQ(ApplyScript("warner", "rhwarner", script), "rhwarner");
  EXPECT_EQ(ScriptCost(script, EditCosts{}), 2);
}

TEST(EditDistanceTest, ScriptPrefersMatchRuns) {
  auto script = EditScript("abc", "abc");
  ASSERT_EQ(script.size(), 3u);
  for (const auto& step : script) EXPECT_EQ(step.op, EditOp::kMatch);
}

TEST(EditDistanceTest, MaskedScriptNeverMatchesMaskedPositions) {
  // Table 6: target positions already covered by the partial translation are
  // excluded from matching.
  std::string source = "henry";
  std::string target = "rhwarner";
  std::vector<bool> allowed = {true, true, false, false,
                               false, false, false, false};
  auto script = MaskedEditScript(source, target, allowed);
  for (const auto& step : script) {
    if (step.op == EditOp::kMatch || step.op == EditOp::kReplace) {
      EXPECT_TRUE(allowed[step.target_pos])
          << "illegal " << static_cast<char>(step.op) << " at masked position "
          << step.target_pos;
    }
  }
  EXPECT_EQ(ApplyScript(source, target, script), target);
}

TEST(EditDistanceTest, FullyMaskedForcesInsertions) {
  std::vector<bool> none(3, false);
  auto script = MaskedEditScript("abc", "abc", none);
  EXPECT_EQ(ApplyScript("abc", "abc", script), "abc");
  for (const auto& step : script) EXPECT_NE(step.op, EditOp::kMatch);
}

TEST(EditDistanceTest, ScriptToStringRendersOps) {
  auto script = EditScript("abc", "axc");
  EXPECT_EQ(EditScriptToString(script), "=R=");
}

class EditDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceProperty, ScriptCostEqualsDistanceOnRandomPairs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(15), "abcd");
    std::string b = rng.RandomString(rng.Uniform(15), "abcd");
    int distance = LevenshteinDistance(a, b);
    auto script = EditScript(a, b);
    EXPECT_EQ(ScriptCost(script, EditCosts{}), distance) << a << " -> " << b;
    EXPECT_EQ(ApplyScript(a, b, script), b) << a << " -> " << b;
    // Unit-cost distance is symmetric.
    EXPECT_EQ(distance, LevenshteinDistance(b, a)) << a << " <-> " << b;
    // Distance bounded by max length, and by replace-all + size difference.
    EXPECT_LE(distance, static_cast<int>(std::max(a.size(), b.size())));
  }
}

TEST_P(EditDistanceProperty, TriangleInequality) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(10), "ab");
    std::string b = rng.RandomString(rng.Uniform(10), "ab");
    std::string c = rng.RandomString(rng.Uniform(10), "ab");
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mcsm::text
