#include "core/explain.h"

#include <gtest/gtest.h>

#include <string>

#include "common/trace.h"
#include "core/matcher.h"
#include "datagen/datasets.h"

namespace mcsm::core {
namespace {

// The explain report is a pure function of the canonical event set, so the
// same search explained at different thread counts must render byte-identical
// text — that is the "golden" property these tests pin down (the dataset is
// the deterministic quickstart/userid generator, so the content assertions
// are stable too).

struct Explained {
  std::string formula;
  std::string text;
  std::string json;
};

Explained RunExplained(size_t threads) {
  datagen::UserIdOptions o;
  o.rows = 1500;
  auto data = datagen::MakeUserIdDataset(o);
  InMemoryTraceSink sink;
  SearchOptions options;
  options.sample_fraction = 0.10;
  options.num_threads = threads;
  options.env.trace = &sink;
  auto d = DiscoverTranslation(data.source, data.target, 0, options);
  EXPECT_TRUE(d.ok()) << d.status();
  Explained out;
  if (d.ok()) out.formula = d->formula().ToString(data.source.schema());
  auto events = sink.CanonicalEvents();
  out.text = ExplainText(events);
  out.json = ExplainJson(events);
  return out;
}

TEST(ExplainTest, ReportNamesTheWinningFormulaAndSections) {
  Explained run = RunExplained(1);
  EXPECT_NE(run.text.find("=== discovery explain ==="), std::string::npos);
  EXPECT_NE(run.text.find("step 1"), std::string::npos);
  EXPECT_NE(run.text.find("step 2"), std::string::npos);
  EXPECT_NE(run.text.find("<< selected"), std::string::npos);
  EXPECT_NE(run.text.find("outcome"), std::string::npos);
  // The accepted formula from the search result appears in the outcome.
  EXPECT_NE(run.text.find("accepted " + run.formula), std::string::npos)
      << run.text;
}

TEST(ExplainTest, JsonReportCarriesSchemaAndOutcome) {
  Explained run = RunExplained(1);
  EXPECT_NE(run.json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(run.json.find("\"step1\""), std::string::npos);
  EXPECT_NE(run.json.find("\"iterations\""), std::string::npos);
  EXPECT_NE(run.json.find("\"outcome\""), std::string::npos);
  EXPECT_NE(run.json.find(run.formula), std::string::npos);
}

TEST(ExplainTest, ReportIsByteIdenticalAcrossThreadCounts) {
  Explained one = RunExplained(1);
  Explained two = RunExplained(2);
  Explained eight = RunExplained(8);
  EXPECT_EQ(one.formula, two.formula);
  EXPECT_EQ(one.formula, eight.formula);
  EXPECT_EQ(one.text, two.text);
  EXPECT_EQ(one.text, eight.text);
  EXPECT_EQ(one.json, two.json);
  EXPECT_EQ(one.json, eight.json);
}

TEST(ExplainTest, EmptyTraceRendersEmptyReport) {
  std::string text = ExplainText({});
  EXPECT_NE(text.find("=== discovery explain ==="), std::string::npos);
  std::string json = ExplainJson({});
  EXPECT_NE(json.find("\"event_count\":0"), std::string::npos);
}

}  // namespace
}  // namespace mcsm::core
