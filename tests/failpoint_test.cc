#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/result.h"

namespace mcsm::failpoint {
namespace {

// Each test restores a clean registry (the suite runs without
// MCSM_FAILPOINTS, so ReloadFromEnv is equivalent to DisarmAll here).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(Trigger(kCsvRead).ok());
}

TEST_F(FailpointTest, RegisteredSitesListsAllCanonicalNames) {
  auto sites = RegisteredSites();
  for (const char* site : {kCsvRead, kCsvWrite, kIndexSimilar, kIndexPattern,
                           kSamplerSample, kSqlExecute, kServiceAccept,
                           kServiceJob, kClientConnect, kClientRead,
                           kPagerRead, kPagerWrite}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
  EXPECT_EQ(sites.size(), 12u);
}

TEST_F(FailpointTest, ArmErrorTriggersInternal) {
  ASSERT_TRUE(Arm(kCsvRead, "error").ok());
  EXPECT_TRUE(Enabled());
  Status st = Trigger(kCsvRead);
  EXPECT_TRUE(st.IsInternal());
  // Other sites stay clean.
  EXPECT_TRUE(Trigger(kCsvWrite).ok());
}

TEST_F(FailpointTest, ArmErrorWithCustomMessage) {
  ASSERT_TRUE(Arm(kSqlExecute, "error:disk on fire").ok());
  Status st = Trigger(kSqlExecute);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("disk on fire"), std::string::npos);
}

TEST_F(FailpointTest, ArmDelaySleepsAndSucceeds) {
  ASSERT_TRUE(Arm(kIndexSimilar, "delay:20ms").ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Trigger(kIndexSimilar).ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 15);
}

TEST_F(FailpointTest, StrideFiresEveryNthHit) {
  ASSERT_TRUE(Arm(kCsvRead, "error@3").ok());
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!Trigger(kCsvRead).ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
}

TEST_F(FailpointTest, UnknownSiteRejected) {
  EXPECT_FALSE(Arm("no.such.site", "error").ok());
}

TEST_F(FailpointTest, MalformedSpecRejected) {
  EXPECT_FALSE(Arm(kCsvRead, "explode").ok());
  EXPECT_FALSE(Arm(kCsvRead, "delay:ms").ok());
  EXPECT_FALSE(Arm(kCsvRead, "error@0").ok());
  EXPECT_FALSE(Arm(kCsvRead, "").ok());
}

TEST_F(FailpointTest, SpecListArmsMultipleSites) {
  ASSERT_TRUE(
      ArmFromSpecList("csv.read=error;index.similar=delay:1ms").ok());
  EXPECT_FALSE(Trigger(kCsvRead).ok());
  EXPECT_TRUE(Trigger(kIndexSimilar).ok());  // delay, not error
  EXPECT_TRUE(Enabled());
}

TEST_F(FailpointTest, DisarmRestoresCleanState) {
  ASSERT_TRUE(Arm(kCsvRead, "error").ok());
  Disarm(kCsvRead);
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(Trigger(kCsvRead).ok());
}

TEST_F(FailpointTest, ReloadFromEnvClearsProgrammaticArms) {
  ASSERT_TRUE(Arm(kCsvRead, "error").ok());
  ReloadFromEnv();  // no MCSM_FAILPOINTS in the test environment
  EXPECT_TRUE(Trigger(kCsvRead).ok());
}

TEST_F(FailpointTest, DisarmAllConsumesTheEnvLatch) {
  // Regression: DisarmAll must consume the lazy MCSM_FAILPOINTS parse, so a
  // trigger after it can never resurrect env arms that were just cleared.
  // (When this test runs in its own process — the ctest layout — the env
  // var is still unread here and this exercises the real first-use path.)
  ::setenv("MCSM_FAILPOINTS", "csv.read=error", /*overwrite=*/1);
  DisarmAll();
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(Trigger(kCsvRead).ok());
  ::unsetenv("MCSM_FAILPOINTS");
}

TEST_F(FailpointTest, MacroPropagatesError) {
  ASSERT_TRUE(Arm(kCsvWrite, "error").ok());
  auto body = []() -> Status {
    MCSM_FAILPOINT(kCsvWrite);
    return Status::OK();
  };
  EXPECT_TRUE(body().IsInternal());
  DisarmAll();
  EXPECT_TRUE(body().ok());
}

}  // namespace
}  // namespace mcsm::failpoint
