#include "core/formula.h"

#include <gtest/gtest.h>

namespace mcsm::core {
namespace {

using relational::Table;

Table SampleTable() {
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  EXPECT_TRUE(t.AppendTextRow({"robert", "h", "kerry"}).ok());
  EXPECT_TRUE(t.AppendTextRow({"amy", "l", "case"}).ok());
  EXPECT_TRUE(t.AppendRow({relational::Value("kyle"),
                           relational::Value::MakeNull(),
                           relational::Value("no")}).ok());
  return t;
}

TEST(FormulaTest, ToStringRendersPaperStyle) {
  TranslationFormula f({Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_EQ(f.ToString(SampleTable().schema()), "%last[1-n]");
  TranslationFormula g({Region::Span(0, 1, 1), Region::Span(1, 1, 1),
                        Region::SpanToEnd(2, 1)});
  EXPECT_EQ(g.ToString(SampleTable().schema()),
            "first[1-1]middle[1-1]last[1-n]");
  EXPECT_EQ(g.ToString(), "B1[1-1]B2[1-1]B3[1-n]");
}

TEST(FormulaTest, LiteralRendering) {
  TranslationFormula f({Region::SpanToEnd(2, 1), Region::Literal(", "),
                        Region::SpanToEnd(0, 1)});
  EXPECT_EQ(f.ToString(SampleTable().schema()), "last[1-n]\", \"first[1-n]");
}

TEST(FormulaTest, SizedUnknownRendering) {
  TranslationFormula f({Region::SizedUnknown(2), Region::Span(0, 1, 2)});
  EXPECT_EQ(f.ToString(), "%{2}B1[1-2]");
}

TEST(FormulaTest, NormalizationMergesAdjacentUnknowns) {
  TranslationFormula f({Region::Unknown(), Region::Unknown(),
                        Region::Span(0, 1, 2)});
  EXPECT_EQ(f.regions().size(), 2u);
  EXPECT_EQ(f.UnknownCount(), 1u);
}

TEST(FormulaTest, NormalizationSumsSizedUnknowns) {
  TranslationFormula f({Region::SizedUnknown(2), Region::SizedUnknown(3)});
  ASSERT_EQ(f.regions().size(), 1u);
  EXPECT_EQ(f.regions()[0].unknown_width, 5u);
  // Mixing sized and unsized degrades to unsized.
  TranslationFormula g({Region::SizedUnknown(2), Region::Unknown()});
  ASSERT_EQ(g.regions().size(), 1u);
  EXPECT_EQ(g.regions()[0].unknown_width, 0u);
}

TEST(FormulaTest, NormalizationMergesContiguousSpans) {
  TranslationFormula f({Region::Span(0, 1, 3), Region::Span(0, 4, 6)});
  ASSERT_EQ(f.regions().size(), 1u);
  EXPECT_EQ(f.regions()[0].start, 1u);
  EXPECT_EQ(f.regions()[0].end, 6u);
  // Different columns never merge.
  TranslationFormula g({Region::Span(0, 1, 3), Region::Span(1, 4, 6)});
  EXPECT_EQ(g.regions().size(), 2u);
  // Non-contiguous spans never merge.
  TranslationFormula h({Region::Span(0, 1, 3), Region::Span(0, 5, 6)});
  EXPECT_EQ(h.regions().size(), 2u);
}

TEST(FormulaTest, NormalizationMergesLiterals) {
  TranslationFormula f({Region::Literal(","), Region::Literal(" ")});
  ASSERT_EQ(f.regions().size(), 1u);
  EXPECT_EQ(f.regions()[0].literal, ", ");
}

TEST(FormulaTest, CompletenessAndCounts) {
  TranslationFormula incomplete({Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_FALSE(incomplete.IsComplete());
  EXPECT_EQ(incomplete.UnknownCount(), 1u);
  TranslationFormula complete({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  EXPECT_TRUE(complete.IsComplete());
  EXPECT_EQ(complete.KnownFixedChars(), 1u);  // to_end spans are not fixed
  EXPECT_FALSE(TranslationFormula{}.IsComplete());
}

TEST(FormulaTest, ApplyProducesTargetValue) {
  Table t = SampleTable();
  TranslationFormula f({Region::Span(0, 1, 1), Region::Span(1, 1, 1),
                        Region::SpanToEnd(2, 1)});
  EXPECT_EQ(f.Apply(t, 0).value(), "rhkerry");
  EXPECT_EQ(f.Apply(t, 1).value(), "alcase");
  // Row 2 has NULL middle: unsatisfiable.
  EXPECT_FALSE(f.Apply(t, 2).has_value());
}

TEST(FormulaTest, ApplyWithLiterals) {
  Table t = SampleTable();
  TranslationFormula f({Region::SpanToEnd(2, 1), Region::Literal(", "),
                        Region::SpanToEnd(0, 1)});
  EXPECT_EQ(f.Apply(t, 0).value(), "kerry, robert");
}

TEST(FormulaTest, ApplyRequiresFullSpanWidth) {
  Table t = SampleTable();
  // last of row 2 is "no" (2 chars): a [1-4] span is unsatisfiable.
  TranslationFormula f({Region::Span(2, 1, 4)});
  EXPECT_TRUE(f.Apply(t, 0).has_value());
  EXPECT_FALSE(f.Apply(t, 2).has_value());
  // to_end from position 3 needs >= 3 chars.
  TranslationFormula g({Region::SpanToEnd(2, 3)});
  EXPECT_EQ(g.Apply(t, 0).value(), "rry");
  EXPECT_FALSE(g.Apply(t, 2).has_value());
}

TEST(FormulaTest, ApplyIncompleteReturnsNothing) {
  Table t = SampleTable();
  TranslationFormula f({Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_FALSE(f.Apply(t, 0).has_value());
}

TEST(FormulaTest, BuildPatternInstantiatesKnownRegions) {
  Table t = SampleTable();
  TranslationFormula f({Region::Unknown(), Region::SpanToEnd(2, 1)});
  auto p = f.BuildPattern(t, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToLikeString(), "_%kerry");
  EXPECT_TRUE(p->Matches("rhkerry"));
  EXPECT_FALSE(p->Matches("kerry"));  // unknowns are non-empty
}

TEST(FormulaTest, BuildPatternSizedUnknown) {
  Table t = SampleTable();
  TranslationFormula f({Region::SizedUnknown(2), Region::Span(2, 1, 2)});
  auto p = f.BuildPattern(t, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToLikeString(), "__ke");
}

TEST(FormulaTest, BuildPatternFailsOnShortValues) {
  Table t = SampleTable();
  TranslationFormula f({Region::Span(2, 1, 4), Region::Unknown()});
  EXPECT_TRUE(f.BuildPattern(t, 0).has_value());
  EXPECT_FALSE(f.BuildPattern(t, 2).has_value());  // "no" too short
}

TEST(FormulaTest, ReferencedColumnsDeduplicated) {
  TranslationFormula f({Region::Span(2, 1, 2), Region::Unknown(),
                        Region::Span(0, 1, 1), Region::SpanToEnd(2, 3)});
  EXPECT_EQ(f.ReferencedColumns(), (std::vector<size_t>{0, 2}));
}

TEST(FormulaTest, EqualityIsStructural) {
  TranslationFormula a({Region::Span(0, 1, 2), Region::Unknown()});
  TranslationFormula b({Region::Span(0, 1, 2), Region::Unknown()});
  TranslationFormula c({Region::Span(0, 1, 3), Region::Unknown()});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace mcsm::core
