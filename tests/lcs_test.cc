#include "text/lcs.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::text {
namespace {

TEST(LongestCommonSubstringTest, PaperAnchor) {
  // "rhwarner" vs "warner": the whole of "warner" (Table 4, underlined).
  auto result = LongestCommonSubstring("warner", "rhwarner");
  EXPECT_EQ(result.length, 6u);
  EXPECT_EQ(result.source_start, 0u);
  EXPECT_EQ(result.target_start, 2u);
}

TEST(LongestCommonSubstringTest, GhkarerCase) {
  // "warner" vs "ghkarer": "ar" (leftmost of the length-2 ties; Table 5
  // derives %B3[23]B3[56] from this pair).
  auto result = LongestCommonSubstring("warner", "ghkarer");
  EXPECT_EQ(result.length, 2u);
  EXPECT_EQ(result.source_start, 1u);  // "ar" in w-a-r-n-e-r
  EXPECT_EQ(result.target_start, 3u);  // "ar" in g-h-k-a-r-e-r
}

TEST(LongestCommonSubstringTest, LeftmostTieBreakPrefersSmallestSourceStart) {
  // "henry" vs "rh": both "h" (src 0) and "r" (src 3) have length 1; the
  // paper's Table 6 picks "h" — smallest source position.
  auto result = LongestCommonSubstring("henry", "rh");
  EXPECT_EQ(result.length, 1u);
  EXPECT_EQ(result.source_start, 0u);
  EXPECT_EQ(result.target_start, 1u);
}

TEST(LongestCommonSubstringTest, NoCommonCharacter) {
  auto result = LongestCommonSubstring("abc", "xyz");
  EXPECT_EQ(result.length, 0u);
}

TEST(LongestCommonSubstringTest, EmptyInputs) {
  EXPECT_EQ(LongestCommonSubstring("", "abc").length, 0u);
  EXPECT_EQ(LongestCommonSubstring("abc", "").length, 0u);
}

TEST(LongestCommonSubstringTest, MaskedPositionsExcluded) {
  // "warner" appears in the target but is fully masked; only "rh" is free.
  std::string target = "rhwarner";
  std::vector<bool> allowed = {true, true, false, false,
                               false, false, false, false};
  auto result = MaskedLongestCommonSubstring("henry", target, allowed);
  EXPECT_EQ(result.length, 1u);
  EXPECT_EQ(result.source_start, 0u);  // 'h'
  EXPECT_EQ(result.target_start, 1u);
}

TEST(LongestCommonSubstringTest, MaskSplitsRuns) {
  // The common substring may not straddle a masked position.
  std::string target = "abcdef";
  std::vector<bool> allowed = {true, true, false, true, true, true};
  auto result = MaskedLongestCommonSubstring("abcdef", target, allowed);
  EXPECT_EQ(result.length, 3u);  // "def"
  EXPECT_EQ(result.target_start, 3u);
}

TEST(LongestCommonSubstringTest, HashedTieBreakIsDeterministic) {
  auto a = LongestCommonSubstring("henry", "rh", LcsTieBreak::kHashed);
  auto b = LongestCommonSubstring("henry", "rh", LcsTieBreak::kHashed);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.length, 1u);
}

TEST(LongestCommonSubstringTest, HashedTieBreakDiffusesAcrossPairs) {
  // Across many all-tie pairs the hashed choice must not always pick the
  // same source position — that concentration is exactly what it exists to
  // prevent (DESIGN.md item 4).
  Rng rng(99);
  std::vector<int> position_hits(8, 0);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string source = "abcdefgh";
    std::string target(1, source[rng.Uniform(source.size())]);
    target += rng.RandomString(3, "0123456789");
    auto res = LongestCommonSubstring(source, target, LcsTieBreak::kHashed);
    ASSERT_EQ(res.length, 1u);
    EXPECT_EQ(source[res.source_start], target[res.target_start]);
    position_hits[res.source_start]++;
  }
  int total = 0;
  for (int h : position_hits) total += h;
  EXPECT_EQ(total, 300);
}

TEST(LongestCommonSubstringTest, HashedTieBreakUsesDifferentCandidates) {
  // Source with the same char at several positions; single-char target. All
  // occurrences tie, and across different salts the chosen source position
  // must vary.
  std::set<size_t> chosen;
  for (int salt = 0; salt < 64; ++salt) {
    std::string source = "xaxbxcxd";  // 'x' at 0, 2, 4, 6
    std::string target = "x" + std::to_string(salt) + "!!";
    auto res = LongestCommonSubstring(source, target, LcsTieBreak::kHashed);
    ASSERT_EQ(res.length, 1u);
    chosen.insert(res.source_start);
  }
  EXPECT_GT(chosen.size(), 1u);
}

TEST(LcsSubsequenceTest, HirschbergMatchesKnownCase) {
  auto pairs = HirschbergLcs("ABCBDAB", "BDCABA");
  EXPECT_EQ(pairs.size(), 4u);  // classic LCS length 4
  // Pairs must be strictly increasing in both coordinates and match chars.
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(std::string("ABCBDAB")[pairs[i].first],
              std::string("BDCABA")[pairs[i].second]);
    if (i > 0) {
      EXPECT_GT(pairs[i].first, pairs[i - 1].first);
      EXPECT_GT(pairs[i].second, pairs[i - 1].second);
    }
  }
}

TEST(LcsSubsequenceTest, HuntSzymanskiMatchesKnownCase) {
  auto pairs = HuntSzymanskiLcs("ABCBDAB", "BDCABA");
  EXPECT_EQ(pairs.size(), 4u);
}

class LcsCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(LcsCrossValidation, AllThreeAlgorithmsAgreeOnLength) {
  Rng rng(GetParam() * 31337);
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(25), "abcd");
    std::string b = rng.RandomString(rng.Uniform(25), "abcd");
    size_t reference = LcsLength(a, b);
    auto hirschberg = HirschbergLcs(a, b);
    auto hunt = HuntSzymanskiLcs(a, b);
    EXPECT_EQ(hirschberg.size(), reference) << a << " / " << b;
    EXPECT_EQ(hunt.size(), reference) << a << " / " << b;
    // Validity: every reported pair matches and is strictly increasing.
    for (auto* pairs : {&hirschberg, &hunt}) {
      for (size_t i = 0; i < pairs->size(); ++i) {
        EXPECT_EQ(a[(*pairs)[i].first], b[(*pairs)[i].second]);
        if (i > 0) {
          EXPECT_GT((*pairs)[i].first, (*pairs)[i - 1].first);
          EXPECT_GT((*pairs)[i].second, (*pairs)[i - 1].second);
        }
      }
    }
  }
}

TEST_P(LcsCrossValidation, SubstringIsValidAndMaximal) {
  Rng rng(GetParam() * 7 + 5);
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.RandomString(1 + rng.Uniform(20), "abc");
    std::string b = rng.RandomString(1 + rng.Uniform(20), "abc");
    auto result = LongestCommonSubstring(a, b);
    if (result.length > 0) {
      EXPECT_EQ(a.substr(result.source_start, result.length),
                b.substr(result.target_start, result.length));
    }
    // Brute-force maximality check.
    size_t best = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        size_t k = 0;
        while (i + k < a.size() && j + k < b.size() && a[i + k] == b[j + k]) ++k;
        best = std::max(best, k);
      }
    }
    EXPECT_EQ(result.length, best) << a << " / " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcsCrossValidation, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mcsm::text
