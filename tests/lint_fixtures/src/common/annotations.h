// Fixture: LK001 exemption — the wrapper header itself may (must) spell the
// raw primitives it wraps. No findings expected anywhere in this file.
#ifndef FIXTURE_ANNOTATIONS_H_
#define FIXTURE_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

namespace fixture {

class Mutex {
 private:
  std::mutex mu_;
};

class SharedMutex {
 private:
  std::shared_mutex mu_;
};

}  // namespace fixture

#endif  // FIXTURE_ANNOTATIONS_H_
