// expect: ND001  (this fixture dropped the [[nodiscard]] annotation)
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
};

}  // namespace fixture

#endif  // FIXTURE_STATUS_H_
