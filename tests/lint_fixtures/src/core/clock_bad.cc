// Fixture: CD001 — nondeterminism sources in the deterministic engine.
// An expect-marker comment pins the exact line each finding must anchor to.
#include <chrono>

namespace fixture {

double Bad() {
  auto t0 = std::chrono::steady_clock::now();  // expect: CD001
  auto t1 = std::chrono::system_clock::now();  // expect: CD001
  (void)t0;
  (void)t1;
  int noise = rand();  // expect: CD001
  return static_cast<double>(noise);
}

double Suppressed() {
  // Deliberate use, suppressed on the specific line:
  auto t = std::chrono::steady_clock::now();  // lint: allow(CD001)
  (void)t;
  return 0.0;
}

int FalsePositives() {
  // A mention of std::chrono::steady_clock in a comment is not a finding.
  const char* s = "std::chrono::steady_clock::now() and rand() in a string";
  int operand(int);  // 'rand(' inside an identifier must not match
  return s != nullptr ? 1 : 0;
}

}  // namespace fixture
