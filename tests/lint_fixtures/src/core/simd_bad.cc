// SI001 fixture: intrinsics headers are banned outside src/text/simd.cc —
// algorithmic code calls the runtime-dispatched kernels via text/simd.h.
#include <immintrin.h>  // expect: SI001
#include <emmintrin.h>  // expect: SI001
#include <smmintrin.h>  // expect: SI001
#include <x86intrin.h>  // expect: SI001
#include "immintrin.h"  // expect: SI001

// A deliberate, suppressed escape hatch stays silent.
#include <nmmintrin.h>  // lint: allow(SI001)

// Mentions in comments or strings must not fire: immintrin.h, and the
// legitimate funnel include spelled as text: #include <immintrin.h>.
#include "text/simd.h"

const char* kDoc = "#include <immintrin.h> belongs in text/simd.cc only";

int SimdFixture() { return kDoc != nullptr ? 1 : 0; }
