// Fixture: scanner stripping — nothing in comments, strings, chars or raw
// strings may fire a rule, and line numbers must survive multi-line
// constructs intact.

namespace fixture {

/* A block comment mentioning std::chrono::steady_clock::now() and rand()
   and std::mutex guard_free_mu_;
   and worker.detach(); spanning
   several lines must stay silent. */

const char* kQuery = R"sql(
  SELECT assert(std::chrono::system_clock)
  FROM std::mutex
  WHERE detach() AND rand()
)sql";

const char* kEscaped = "quoted \" rand( \" still a string";
const char kTick = '\'';
const int kSeparated = 1'000'000;  // digit separator, not a char literal

/* After two multi-line constructs above, a real finding must land on the
   correct physical line: */
void LineNumberCheck() {
  int x = rand();  // expect: CD001
  (void)x;
  (void)kQuery;
  (void)kEscaped;
  (void)kTick;
  (void)kSeparated;
}

}  // namespace fixture
