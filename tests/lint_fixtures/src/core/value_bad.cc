// Fixture: VD001 — unchecked .value() access, plus AS001 bare assert.
#include <cassert>
#include <optional>

namespace fixture {

int Bad(std::optional<int> result) {
  assert(result.has_value());  // expect: AS001
  return result.value();  // expect: VD001
}

int Good(std::optional<int> result) {
  if (!result.ok()) {
    return 0;
  }
  return result.value();
}

}  // namespace fixture
