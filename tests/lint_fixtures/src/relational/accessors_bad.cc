// Fixture: TS001 — retired Table accessors outside the compat shim.
// The view API (Column()/TextAt()/ValueAt()/IsNull()) replaced the
// reference-returning surface; the old spellings must not come back.
namespace fixture {

struct FakeTable {
  int cell(int, int) const { return 0; }
  const char* CellText(int, int) const { return ""; }
};

int Bad(const FakeTable& t, const FakeTable* p) {
  int a = t.cell(0, 0);  // expect: TS001
  int b = p->cell(1, 2);  // expect: TS001
  const char* c = t.CellText(0, 0);  // expect: TS001
  const char* d = p -> CellText(3, 4);  // expect: TS001
  return a + b + (c != nullptr) + (d != nullptr);
}

int Suppressed(const FakeTable& t) {
  // Deliberate use, suppressed on the specific line:
  return t.cell(0, 0);  // lint: allow(TS001)
}

int FalsePositives(const FakeTable& t) {
  // Comments and strings mentioning t.cell(0, 0) or ->CellText(r, c) are
  // not findings; neither are free functions or declarations of the name.
  const char* s = "t.cell(0, 0) and p->CellText(1, 2) in a string";
  int cell(int);        // declaration, not member access
  int CellText(int);    // declaration, not member access
  int stem_cell(int);   // suffix match must not fire
  (void)t;
  return s != nullptr ? 1 : 0;
}

}  // namespace fixture
