// Fixture: TS001 exemption — this path mirrors the real compat shim
// (src/relational/table_compat.h), the one file allowed to spell the
// retired accessors. Nothing below may produce a finding.
namespace fixture {

struct FakeTable {
  int cell(int, int) const { return 0; }
  const char* CellText(int, int) const { return ""; }
};

inline int CellValue(const FakeTable& t) { return t.cell(0, 0); }
inline const char* CellTextCopy(const FakeTable& t) {
  return t.CellText(0, 0);
}

}  // namespace fixture
