// Fixture: LK001 — lock discipline.
#ifndef FIXTURE_LOCKS_BAD_H_
#define FIXTURE_LOCKS_BAD_H_

#include "common/annotations.h"

namespace fixture {

class Bad {
 private:
  std::mutex raw_mu_;  // expect: LK001
  Mutex orphan_mu_;  // expect: LK001
};

class Good {
 private:
  Mutex mu_;
  int value_ MCSM_GUARDED_BY(mu_) = 0;
};

class SharedGood {
  void RehashLocked() MCSM_REQUIRES(shared_mu_);

 private:
  mutable SharedMutex shared_mu_;
  int table_ MCSM_GUARDED_BY(shared_mu_) = 0;
};

class SuppressedWithRationale {
 private:
  Mutex cv_mu_;  // lint: allow(LK001): pairs a condition_variable_any; state is atomic
};

class SuppressedWithoutRationale {
 private:
  Mutex lazy_mu_;  // lint: allow(LK001)  // expect: LK001
};

}  // namespace fixture

#endif  // FIXTURE_LOCKS_BAD_H_
