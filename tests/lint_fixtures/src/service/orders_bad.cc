// Fixture: MO001 — non-seq_cst memory orders need an // ordering: rationale.
#include <atomic>

namespace fixture {

std::atomic<int> g_counter{0};
std::atomic<bool> g_flag{false};

void Bad() {
  g_counter.fetch_add(1, std::memory_order_relaxed);  // expect: MO001
  g_flag.store(true, std::memory_order_release);  // expect: MO001
}

void Good() {
  // ordering: relaxed — monotonic test counter, nothing reads it for sync.
  g_counter.fetch_add(1, std::memory_order_relaxed);
  g_flag.store(true);  // seq_cst default needs no rationale
  // ordering: release — pairs with the acquire load in GoodReader.
  g_flag.store(true, std::memory_order_release);
}

bool GoodReader() {
  // ordering: acquire — pairs with the release store in Good.
  return g_flag.load(std::memory_order_acquire);
}

void SuppressedLine() {
  g_counter.fetch_add(1, std::memory_order_relaxed);  // lint: allow(MO001)
}

}  // namespace fixture
