// Fixture: TH001 — thread hygiene.
#include <thread>

namespace fixture {

void Bad() {
  std::thread worker([] {});
  worker.detach();  // expect: TH001
  auto* leaked = new std::thread([] {});  // expect: TH001
  (void)leaked;
}

void Good() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace fixture
