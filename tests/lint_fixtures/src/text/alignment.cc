// Fixture: SS001 — raw substr in a SafeSubstr-adopted file (this path shadows
// src/text/alignment.cc, which is in SAFE_SUBSTR_FILES).
#include <string>

namespace fixture {

std::string Bad(const std::string& s) {
  return s.substr(1, 5);  // expect: SS001
}

std::string Suppressed(const std::string& s) {
  return s.substr(0);  // lint: allow(SS001)
}

}  // namespace fixture
