#include "core/matcher.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "relational/table.h"

namespace mcsm::core {
namespace {

SearchOptions FastOptions() {
  SearchOptions o;
  o.sample_fraction = 0.10;
  return o;
}

TEST(DiscoverAllTest, MaxFormulasCapsRounds) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  // The dataset supports two dominant formulas; a cap of 1 stops after one.
  auto all = DiscoverAllTranslations(data.source, data.target, 0,
                                     FastOptions(), /*max_formulas=*/1,
                                     /*min_matched_rows=*/2);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 1u);
  EXPECT_FALSE(all->front().truncated());
}

TEST(DiscoverAllTest, MinMatchedRowsStopsCleanly) {
  datagen::UserIdOptions o;
  o.rows = 1000;
  auto data = datagen::MakeUserIdDataset(o);
  // No formula can cover more rows than the table holds: the first round's
  // coverage misses the floor and the loop returns cleanly with no results.
  auto all = DiscoverAllTranslations(data.source, data.target, 0,
                                     FastOptions(), 4,
                                     /*min_matched_rows=*/100000);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_TRUE(all->empty());
}

TEST(DiscoverAllTest, FullCoverageEmptiesTablesAndStops) {
  datagen::TimeOptions o;
  o.rows = 1500;
  auto data = datagen::MakeTimeDataset(o);
  // hrs||mins||secs covers every target row; after removal the target table
  // is empty and the loop must stop without a second (failing) search.
  auto all = DiscoverAllTranslations(data.source, data.target, 0,
                                     FastOptions(), 4, /*min_matched_rows=*/2);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_GE(all->size(), 1u);
  EXPECT_EQ(all->front().coverage.matched_rows(), data.target.num_rows());
}

TEST(DiscoverAllTest, FirstRoundOutOfRangePropagates) {
  datagen::UserIdOptions o;
  o.rows = 200;
  auto data = datagen::MakeUserIdDataset(o);
  auto all = DiscoverAllTranslations(data.source, data.target,
                                     data.target.num_columns() + 5,
                                     FastOptions());
  EXPECT_TRUE(all.status().IsOutOfRange());
}

TEST(DiscoverAllTest, FirstRoundNotFoundPropagates) {
  // Disjoint alphabets: no source column shares a q-gram with the target, so
  // even the FIRST round finds nothing. That is a real error for the caller
  // (their input can never produce a translation), not a clean empty result.
  auto source = relational::Table::WithTextColumns({"a"});
  auto target = relational::Table::WithTextColumns({"b"});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(source
                    .AppendRow({relational::Value(std::string("abcdef") +
                                                  static_cast<char>('a' + i))})
                    .ok());
    ASSERT_TRUE(target
                    .AppendRow({relational::Value(std::string("012345") +
                                                  static_cast<char>('0' + i % 10))})
                    .ok());
  }
  auto all = DiscoverAllTranslations(source, target, 0, FastOptions());
  EXPECT_TRUE(all.status().IsNotFound()) << all.status().ToString();
}

TEST(DiscoverTranslationTest, TinyWorkBudgetReturnsTruncated) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  SearchOptions options = FastOptions();
  options.env.budget.max_pairs_aligned = 1;  // trips on the second alignment
  auto d = DiscoverTranslation(data.source, data.target, 0, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->truncated());
  EXPECT_EQ(d->search.budget_trip, BudgetTrip::kPairs);
}

TEST(DiscoverTranslationTest, TinyFormulaBudgetReturnsTruncated) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  SearchOptions options = FastOptions();
  options.env.budget.max_candidate_formulas = 2;
  auto d = DiscoverTranslation(data.source, data.target, 0, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->truncated());
  EXPECT_EQ(d->search.budget_trip, BudgetTrip::kFormulas);
}

TEST(DiscoverAllTest, TruncatedRoundIsSurfacedAndStopsTheLoop) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  SearchOptions options = FastOptions();
  options.env.budget.max_pairs_aligned = 1;
  auto all = DiscoverAllTranslations(data.source, data.target, 0, options);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 1u);
  EXPECT_TRUE(all->front().truncated());
}

// Acceptance criterion: a 50 ms deadline on a CiteSeer-style dataset returns
// a truncated partial result — not an error, not an abort, not an unbounded
// run. The deadline clock starts at search construction, so indexing the
// long citation strings alone exhausts it.
TEST(DiscoverTranslationTest, CitationDeadline50msTruncates) {
  datagen::CitationOptions o;
  o.rows = 30000;
  auto data = datagen::MakeCitationDataset(o);
  SearchOptions options = FastOptions();
  options.env.budget.wall_ms = 50;
  auto d = DiscoverTranslation(data.source, data.target, data.target_column,
                               options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->truncated());
  EXPECT_EQ(d->search.budget_trip, BudgetTrip::kWallClock);
}

}  // namespace
}  // namespace mcsm::core
