#include "relational/pattern.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::relational {
namespace {

struct LikeCase {
  const char* text;
  const char* pattern;
  bool matches;
};

class LikeMatchCases : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchCases, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.matches)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LikeMatchCases,
    ::testing::Values(
        LikeCase{"abc", "abc", true}, LikeCase{"abc", "a%", true},
        LikeCase{"abc", "%c", true}, LikeCase{"abc", "%b%", true},
        LikeCase{"abc", "%", true}, LikeCase{"", "%", true},
        LikeCase{"abc", "a_c", true}, LikeCase{"abc", "a_b", false},
        LikeCase{"abc", "abcd", false}, LikeCase{"abc", "ab", false},
        LikeCase{"", "", true}, LikeCase{"a", "", false},
        LikeCase{"banana", "%ana", true}, LikeCase{"banana", "b%na", true},
        LikeCase{"banana", "%an%an%", true},
        LikeCase{"banana", "%ann%", false},
        LikeCase{"aab", "%ab", true},  // backtracking over the first 'a'
        LikeCase{"abc", "___", true}, LikeCase{"abc", "____", false},
        LikeCase{"xkerry", "%kerry", true},
        LikeCase{"kerry", "%kerry", true}));

TEST(SearchPatternTest, FromLikeStringRoundTrip) {
  auto p = SearchPattern::FromLikeString("%kerry");
  EXPECT_EQ(p.ToLikeString(), "%kerry");
  EXPECT_TRUE(p.Matches("rhkerry"));
  EXPECT_TRUE(p.Matches("kerry"));
  EXPECT_FALSE(p.Matches("kerr"));
}

TEST(SearchPatternTest, CaptureLeftmostBinding) {
  auto p = SearchPattern::FromLikeString("%an%");
  auto spans = p.CaptureLiterals("banana");
  ASSERT_TRUE(spans.has_value());
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ((*spans)[0], (Span{1, 2}));  // leftmost "an"
}

TEST(SearchPatternTest, CaptureBacktracksWhenNeeded) {
  // Leftmost binding of "ab" at 0 would leave no "b" afterwards; the match
  // must backtrack to the later occurrence.
  auto p = SearchPattern::FromLikeString("%ab%b");
  auto spans = p.CaptureLiterals("xabab");
  ASSERT_TRUE(spans.has_value());
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0], (Span{1, 2}));
  EXPECT_EQ((*spans)[1], (Span{4, 1}));
}

TEST(SearchPatternTest, AdjacentLiteralsKeepSeparateSpans) {
  // One literal per formula region: "h" then "kerry" must capture as two
  // spans even though they are adjacent in the text.
  SearchPattern p({{true, false, 0, ""},
                   {false, false, 0, "h"},
                   {false, false, 0, "kerry"}});
  auto spans = p.CaptureLiterals("rhkerry");
  ASSERT_TRUE(spans.has_value());
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0], (Span{1, 1}));
  EXPECT_EQ((*spans)[1], (Span{2, 5}));
}

TEST(SearchPatternTest, MinOneWildcardRejectsEmptyGap) {
  SearchPattern p({{true, true, 0, ""}, {false, false, 0, "kerry"}});
  EXPECT_TRUE(p.Matches("rkerry"));
  EXPECT_FALSE(p.Matches("kerry"));  // gap must be >= 1 char
  EXPECT_EQ(p.ToLikeString(), "_%kerry");
}

TEST(SearchPatternTest, TrailingMinOneWildcard) {
  SearchPattern p({{false, false, 0, "ab"}, {true, true, 0, ""}});
  EXPECT_TRUE(p.Matches("abc"));
  EXPECT_FALSE(p.Matches("ab"));
}

TEST(SearchPatternTest, ExactWidthWildcard) {
  // %{2} on fixed-width targets: exactly two characters.
  SearchPattern p({{false, false, 0, "04"},
                   {true, false, 2, ""},
                   {false, false, 0, "59"}});
  EXPECT_TRUE(p.Matches("042359"));
  EXPECT_FALSE(p.Matches("0459"));
  EXPECT_FALSE(p.Matches("0423x59"));
  EXPECT_EQ(p.ToLikeString(), "04__59");
}

TEST(SearchPatternTest, ExactWidthCaptureMask) {
  SearchPattern p({{false, false, 0, "04"},
                   {true, false, 2, ""},
                   {false, false, 0, "59"}});
  auto mask = p.FreeMask("042359");
  ASSERT_TRUE(mask.has_value());
  std::vector<bool> expected = {false, false, true, true, false, false};
  EXPECT_EQ(*mask, expected);
}

TEST(SearchPatternTest, NormalizationCollapsesWildcards) {
  SearchPattern p({{true, false, 0, ""},
                   {true, true, 0, ""},
                   {false, false, 0, "x"},
                   {false, false, 0, ""},  // empty literal dropped
                   {true, false, 0, ""}});
  EXPECT_EQ(p.segments().size(), 3u);
  EXPECT_TRUE(p.segments()[0].min_one);  // min_one survives the merge
}

TEST(SearchPatternTest, ExactWidthsMerge) {
  SearchPattern p({{true, false, 2, ""}, {true, false, 3, ""}});
  ASSERT_EQ(p.segments().size(), 1u);
  EXPECT_EQ(p.segments()[0].exact_len, 5u);
}

TEST(SearchPatternTest, IsUniversal) {
  EXPECT_TRUE(SearchPattern::FromLikeString("%").IsUniversal());
  EXPECT_FALSE(SearchPattern::FromLikeString("%a%").IsUniversal());
  SearchPattern exact({{true, false, 3, ""}});
  EXPECT_FALSE(exact.IsUniversal());
}

TEST(SearchPatternTest, LongestLiteral) {
  auto p = SearchPattern::FromLikeString("ab%kerry%z");
  EXPECT_EQ(p.LongestLiteral(), "kerry");
  EXPECT_EQ(SearchPattern::FromLikeString("%").LongestLiteral(), "");
}

TEST(SearchPatternTest, FreeMaskCoversLiterals) {
  auto p = SearchPattern::FromLikeString("%kerry");
  auto mask = p.FreeMask("rhkerry");
  ASSERT_TRUE(mask.has_value());
  std::vector<bool> expected = {true, true, false, false, false, false, false};
  EXPECT_EQ(*mask, expected);
  EXPECT_FALSE(p.FreeMask("nomatch").has_value());
}

TEST(SearchPatternTest, MatchAgreesWithLikeMatch) {
  Rng rng(71);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = rng.RandomString(rng.Uniform(8), "ab");
    // Random pattern over {a, b, %}.
    std::string like;
    size_t len = rng.Uniform(6);
    for (size_t i = 0; i < len; ++i) {
      like.push_back("ab%"[rng.Uniform(3)]);
    }
    auto p = SearchPattern::FromLikeString(like);
    EXPECT_EQ(p.Matches(text), LikeMatch(text, like))
        << "'" << text << "' vs '" << like << "'";
  }
}

}  // namespace
}  // namespace mcsm::relational
