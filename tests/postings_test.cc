#include "relational/postings.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/rng.h"

namespace mcsm::relational {
namespace {

/// Deterministic synthetic list: `n` ascending rows whose gaps and tfs come
/// from the seeded engine rng, with `delta_span` controlling how wide the
/// gaps (and thus the per-block byte widths) get.
std::vector<Posting> MakeList(size_t n, uint32_t delta_span, uint32_t tf_span,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<Posting> list;
  list.reserve(n);
  uint32_t row = static_cast<uint32_t>(rng.UniformInt(0, 5));
  for (size_t i = 0; i < n; ++i) {
    list.push_back(
        {row, static_cast<uint32_t>(
                  rng.UniformInt(1, static_cast<int64_t>(tf_span)))});
    row += static_cast<uint32_t>(
        rng.UniformInt(1, static_cast<int64_t>(delta_span)));
  }
  return list;
}

std::vector<Posting> Decoded(const PostingStore& store, uint32_t gram_id) {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> tfs;
  const size_t n = store.Decode(gram_id, &rows, &tfs);
  std::vector<Posting> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back({rows[i], tfs[i]});
  return out;
}

void ExpectRoundTrip(const std::vector<Posting>& list) {
  std::vector<std::vector<Posting>> lists;
  lists.push_back(list);
  PostingStore store = PostingStore::Build(std::move(lists));
  ASSERT_EQ(store.gram_count(), 1u);
  EXPECT_EQ(store.Count(0), list.size());
  const std::vector<Posting> decoded = Decoded(store, 0);
  ASSERT_EQ(decoded.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(decoded[i].row, list[i].row) << "at " << i;
    EXPECT_EQ(decoded[i].tf, list[i].tf) << "at " << i;
  }
}

TEST(PostingStoreTest, RoundTripAcrossBlockBoundaries) {
  // Exercise every block-boundary shape: single entry, one byte short of a
  // block, exactly one block, one over, several blocks, and a long list.
  for (size_t n : {1u, 2u, 127u, 128u, 129u, 255u, 256u, 257u, 1000u}) {
    SCOPED_TRACE(n);
    ExpectRoundTrip(MakeList(n, /*delta_span=*/3, /*tf_span=*/1, /*seed=*/n));
  }
}

TEST(PostingStoreTest, RoundTripWideDeltasAndTfs) {
  // Gaps > 255 force 2-byte deltas, > 65535 force 4-byte; tf spans force the
  // separate tf stream through each width too.
  for (uint32_t delta_span : {2u, 300u, 70000u}) {
    for (uint32_t tf_span : {1u, 2u, 300u, 70000u}) {
      SCOPED_TRACE(delta_span);
      SCOPED_TRACE(tf_span);
      ExpectRoundTrip(MakeList(500, delta_span, tf_span,
                               /*seed=*/delta_span * 7 + tf_span));
    }
  }
}

TEST(PostingStoreTest, RoundTripManyGramsSharedArena) {
  std::vector<std::vector<Posting>> lists;
  std::vector<std::vector<Posting>> expected;
  for (size_t id = 0; id < 50; ++id) {
    expected.push_back(MakeList(id * 13 % 300, /*delta_span=*/500,
                                /*tf_span=*/5, /*seed=*/id));
    lists.push_back(expected.back());
  }
  PostingStore store = PostingStore::Build(std::move(lists));
  ASSERT_EQ(store.gram_count(), expected.size());
  for (size_t id = 0; id < expected.size(); ++id) {
    SCOPED_TRACE(id);
    const std::vector<Posting> decoded =
        Decoded(store, static_cast<uint32_t>(id));
    ASSERT_EQ(decoded.size(), expected[id].size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].row, expected[id][i].row);
      EXPECT_EQ(decoded[i].tf, expected[id][i].tf);
    }
  }
}

TEST(PostingStoreTest, AllOnesTfStreamIsElided) {
  // 200 postings with tf == 1 and unit deltas: one byte per delta and no tf
  // bytes at all, so the arena stays under 200 bytes + block overhead.
  std::vector<std::vector<Posting>> lists;
  lists.push_back(MakeList(200, /*delta_span=*/2, /*tf_span=*/1, /*seed=*/1));
  PostingStore store = PostingStore::Build(std::move(lists));
  EXPECT_LE(store.data_size(), 200u);
  const std::vector<Posting> decoded = Decoded(store, 0);
  ASSERT_EQ(decoded.size(), 200u);
  for (const Posting& p : decoded) EXPECT_EQ(p.tf, 1u);
}

TEST(DecodePostingBlockTest, RejectsMalformedMeta) {
  std::vector<uint8_t> data(64, 1);
  uint32_t rows[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  PostingBlockMeta meta{};
  meta.first_row = 0;
  meta.last_row = 10;
  meta.offset = 0;
  meta.count = 8;
  meta.row_width = 1;
  meta.tf_width = 0;
  EXPECT_TRUE(DecodePostingBlock(meta, data.data(), data.size(), rows, tfs));

  PostingBlockMeta bad = meta;
  bad.count = 0;  // empty blocks are never emitted
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  bad = meta;
  bad.count = kPostingBlockSize + 1;
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  bad = meta;
  bad.row_width = 3;  // widths are 1/2/4 only
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  bad = meta;
  bad.tf_width = 5;
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  bad = meta;
  bad.offset = static_cast<uint32_t>(data.size());  // payload past the arena
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  bad = meta;
  bad.count = 40;
  bad.row_width = 2;  // 39 * 2 bytes > 64-byte arena
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
  // Offset arithmetic must not wrap: a huge offset with a near-max size.
  bad = meta;
  bad.offset = 0xFFFFFFF0u;
  EXPECT_FALSE(DecodePostingBlock(bad, data.data(), data.size(), rows, tfs));
}

/// Reference intersection: candidates that appear as a row in `list`.
std::vector<uint32_t> ReferenceIntersect(const std::vector<uint32_t>& cand,
                                         const std::vector<Posting>& list) {
  std::vector<uint32_t> out;
  for (uint32_t c : cand) {
    for (const Posting& p : list) {
      if (p.row == c) {
        out.push_back(c);
        break;
      }
    }
  }
  return out;
}

TEST(PostingStoreTest, IntersectMatchesReference) {
  const std::vector<Posting> list =
      MakeList(700, /*delta_span=*/9, /*tf_span=*/1, /*seed=*/42);
  std::vector<std::vector<Posting>> lists;
  lists.push_back(list);
  PostingStore store = PostingStore::Build(std::move(lists));

  Rng rng(7);
  std::vector<uint32_t> cand;
  const uint32_t max_row = list.back().row + 10;
  for (uint32_t r = 0; r <= max_row; ++r) {
    if (rng.UniformInt(0, 3) == 0) cand.push_back(r);
  }
  const std::vector<uint32_t> expected = ReferenceIntersect(cand, list);
  store.Intersect(0, &cand);
  EXPECT_EQ(cand, expected);
}

TEST(PostingStoreTest, IntersectEmptyAndDisjoint) {
  std::vector<std::vector<Posting>> lists;
  lists.push_back({{10, 1}, {20, 1}, {30, 1}});
  lists.emplace_back();  // empty gram
  PostingStore store = PostingStore::Build(std::move(lists));

  std::vector<uint32_t> cand = {1, 2, 3};  // all below the list
  store.Intersect(0, &cand);
  EXPECT_TRUE(cand.empty());

  cand = {40, 50};  // all above
  store.Intersect(0, &cand);
  EXPECT_TRUE(cand.empty());

  cand = {10, 15, 20, 25, 30, 35};
  store.Intersect(0, &cand);
  EXPECT_EQ(cand, (std::vector<uint32_t>{10, 20, 30}));

  cand = {10, 20};
  store.Intersect(1, &cand);  // empty gram keeps nothing
  EXPECT_TRUE(cand.empty());

  cand = {10, 20};
  store.Intersect(99, &cand);  // out-of-range gram id
  EXPECT_TRUE(cand.empty());
}

TEST(PostingStoreTest, IntersectBudgetPassesTailUnfiltered) {
  // Two blocks. A budget that admits only the first block's decode must keep
  // the tail candidates unfiltered — callers verify exactly, so dropping
  // them would lose correctness, keeping them only costs work.
  std::vector<Posting> list;
  for (uint32_t r = 0; r < 128; ++r) list.push_back({r * 2, 1});  // 0..254
  for (uint32_t r = 300; r < 321; ++r) list.push_back({r, 1});    // 2nd block
  std::vector<std::vector<Posting>> lists;
  lists.push_back(list);
  PostingStore store = PostingStore::Build(std::move(lists));

  // Without a budget the second block is decoded and filters exactly.
  std::vector<uint32_t> cand = {1, 200, 290, 301, 310, 400};
  store.Intersect(0, &cand);
  EXPECT_EQ(cand, (std::vector<uint32_t>{200, 301, 310}));

  BudgetLimits limits;
  limits.max_postings_scanned = 128;  // first block fits, second trips
  RunBudget budget(limits);
  // 1 is absent (odd) and 200 present — both resolved by the first block's
  // decode; 301 and 310 fall inside the second block, whose decode the
  // budget refuses, so they pass through unfiltered.
  cand = {1, 200, 301, 310};
  store.Intersect(0, &cand, &budget);
  EXPECT_EQ(cand, (std::vector<uint32_t>{200, 301, 310}));
}

TEST(PostingStoreTest, ApproxMemoryBytesCoversArena) {
  std::vector<std::vector<Posting>> lists;
  lists.push_back(MakeList(1000, /*delta_span=*/3, /*tf_span=*/1, 3));
  PostingStore store = PostingStore::Build(std::move(lists));
  EXPECT_GE(store.ApproxMemoryBytes(), store.data_size());
  // ~1 byte per posting plus 16-byte metas: far below the 8-byte Posting.
  EXPECT_LT(store.ApproxMemoryBytes(), 1000 * sizeof(Posting));
}

}  // namespace
}  // namespace mcsm::relational
