#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matcher.h"

namespace mcsm::core {
namespace {

using relational::Table;
using relational::Value;

// Generative end-to-end property: plant a random translation formula over a
// random source table, produce the (shuffled) target column with it, and
// require the search to recover a formula that translates most rows. The
// discovered formula need not be syntactically identical — several formulas
// can denote the same translation — so the assertion is on coverage.
struct Planted {
  Table source;
  Table target;
  TranslationFormula formula;
};

Planted MakePlanted(uint64_t seed, size_t rows, size_t columns) {
  Rng rng(seed);
  const std::string alphabet = "abcdefghijklmnopqrst";

  std::vector<std::string> names;
  for (size_t c = 0; c < columns; ++c) names.push_back("c" + std::to_string(c));
  Planted planted;
  planted.source = Table::WithTextColumns(names);

  // Values: word-like strings, 4-9 chars, drawn from per-column pools so
  // distinct counts resemble real columns.
  std::vector<std::vector<std::string>> pools(columns);
  for (size_t c = 0; c < columns; ++c) {
    size_t pool_size = 20 + rng.Uniform(rows / 2 + 1);
    for (size_t i = 0; i < pool_size; ++i) {
      pools[c].push_back(rng.RandomString(4 + rng.Uniform(6), alphabet));
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns; ++c) {
      row.push_back(pools[c][rng.Uniform(pools[c].size())]);
    }
    EXPECT_TRUE(planted.source.AppendTextRow(row).ok());
  }

  // Random complete formula: 2-3 regions over distinct columns — at least
  // one to-end span (so targets are several characters wide; a formula of
  // nothing but 1-char spans produces 2-char targets that are genuinely
  // unidentifiable — every experiment in the paper has a wide region too).
  size_t region_count = 2 + rng.Uniform(2);
  std::vector<size_t> cols;
  for (size_t c = 0; c < columns; ++c) cols.push_back(c);
  rng.Shuffle(cols);
  size_t wide = rng.Uniform(std::min(region_count, cols.size()));
  std::vector<Region> regions;
  for (size_t i = 0; i < region_count && i < cols.size(); ++i) {
    if (i == wide || rng.Bernoulli(0.5)) {
      regions.push_back(Region::SpanToEnd(cols[i], 1));
    } else {
      regions.push_back(Region::Span(cols[i], 1, 1 + rng.Uniform(3)));
    }
  }
  planted.formula = TranslationFormula(std::move(regions));

  std::vector<std::string> produced;
  for (size_t r = 0; r < rows; ++r) {
    auto v = planted.formula.Apply(planted.source, r);
    if (v.has_value()) produced.push_back(*v);
  }
  rng.Shuffle(produced);
  planted.target = Table::WithTextColumns({"a"});
  for (auto& v : produced) {
    EXPECT_TRUE(planted.target.AppendTextRow({v}).ok());
  }
  return planted;
}

class PlantedFormulaRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlantedFormulaRecovery, SearchTranslatesMostRows) {
  Planted planted = MakePlanted(GetParam(), 1200, 4);
  ASSERT_GT(planted.target.num_rows(), 1000u);

  SearchOptions options;
  auto d = DiscoverTranslation(planted.source, planted.target, 0, options);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->formula().IsComplete())
      << d->formula().ToString(planted.source.schema());
  // The planted formula covers every target row; the discovered one must
  // cover the large majority (it may legitimately differ syntactically,
  // e.g. [1-4] vs [1-n] on width-4 values, or pick an equivalent column).
  double fraction = static_cast<double>(d->coverage.matched_rows()) /
                    static_cast<double>(planted.target.num_rows());
  EXPECT_GE(fraction, 0.9)
      << "planted " << planted.formula.ToString() << ", found "
      << d->formula().ToString() << " covering " << d->coverage.matched_rows()
      << "/" << planted.target.num_rows();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedFormulaRecovery,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Consistency property: for a complete formula, the retrieval pattern built
// from a row matches exactly the value Apply produces for that row.
class PatternApplyConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternApplyConsistency, PatternMatchesAppliedValue) {
  Planted planted = MakePlanted(GetParam() + 1000, 120, 5);
  for (size_t r = 0; r < planted.source.num_rows(); ++r) {
    auto value = planted.formula.Apply(planted.source, r);
    auto pattern = planted.formula.BuildPattern(planted.source, r);
    ASSERT_EQ(value.has_value(), pattern.has_value());
    if (!value.has_value()) continue;
    EXPECT_TRUE(pattern->Matches(*value))
        << planted.formula.ToString() << " row " << r << " value " << *value;
    // A complete formula's pattern has no wildcards: it matches nothing else.
    EXPECT_FALSE(pattern->Matches(*value + "x"));
    if (!value->empty()) {
      EXPECT_FALSE(pattern->Matches(value->substr(1)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternApplyConsistency,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mcsm::core
