#include "text/qgram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::text {
namespace {

TEST(QGramTest, PaperExample) {
  // "the string possible contains five 4-grams, namely poss, ossi, ssib,
  // sibl and ible" (Section 3.2).
  auto grams = QGrams("possible", 4);
  ASSERT_EQ(grams.size(), 5u);
  EXPECT_EQ(grams[0], "poss");
  EXPECT_EQ(grams[1], "ossi");
  EXPECT_EQ(grams[2], "ssib");
  EXPECT_EQ(grams[3], "sibl");
  EXPECT_EQ(grams[4], "ible");
}

TEST(QGramTest, BigramsOfShortStrings) {
  EXPECT_TRUE(QGrams("", 2).empty());
  EXPECT_TRUE(QGrams("a", 2).empty());
  auto grams = QGrams("ab", 2);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramTest, ZeroQYieldsNothing) {
  EXPECT_TRUE(QGrams("abc", 0).empty());
  EXPECT_EQ(QGramCount(3, 0), 0u);
}

TEST(QGramTest, ProfileCountsMultiplicity) {
  auto profile = QGramProfile("banana", 2);
  EXPECT_EQ(profile["an"], 2);
  EXPECT_EQ(profile["na"], 2);
  EXPECT_EQ(profile["ba"], 1);
  EXPECT_EQ(profile.size(), 3u);
}

TEST(QGramTest, ExcludingSeparatorCharacters) {
  // Section 6.1: "we would not use a search key such as ':4' to search a
  // timestamp column".
  auto grams = QGramsExcluding("11:45:34", 2, ":");
  for (const auto& g : grams) {
    EXPECT_EQ(g.find(':'), std::string::npos) << g;
  }
  EXPECT_EQ(grams.size(), 3u);  // "11", "45", "34"
}

TEST(QGramTest, SharedCountsMinOfMultiplicities) {
  EXPECT_EQ(SharedQGrams("banana", "anan", 2), 3);   // an x2? an:2/2, na:2/1
  EXPECT_EQ(SharedQGrams("abc", "xyz", 2), 0);
  EXPECT_EQ(SharedQGrams("abc", "abc", 2), 2);
}

TEST(QGramTest, SharedMaskedRespectsMask) {
  // "04" is present in the target but masked out.
  std::vector<bool> mask = {false, false, true, true, true, true};
  EXPECT_EQ(SharedQGramsMasked("04", "040423", mask, 2), 1);  // only pos 2-3
  std::vector<bool> none(6, false);
  EXPECT_EQ(SharedQGramsMasked("04", "040423", none, 2), 0);
  std::vector<bool> all(6, true);
  // min-of-multiplicities: the key holds "04" once, so one shared gram even
  // though the target holds it twice.
  EXPECT_EQ(SharedQGramsMasked("04", "040423", all, 2), 1);
}

TEST(QGramTest, SharedMaskedGramMustBeFullyFree) {
  // A gram straddling a masked boundary does not count.
  std::vector<bool> mask = {true, false, true};
  EXPECT_EQ(SharedQGramsMasked("ab", "abb", mask, 2), 0);
}

class QGramCountProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(QGramCountProperty, CountMatchesFormulaOnRandomStrings) {
  const size_t q = GetParam();
  Rng rng(q * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    size_t len = rng.Uniform(30);
    std::string s = rng.RandomString(len, "abcd");
    auto grams = QGrams(s, q);
    EXPECT_EQ(grams.size(), QGramCount(len, q));
    // Profile total equals gram count.
    size_t total = 0;
    for (const auto& [g, c] : QGramProfile(s, q)) total += c;
    EXPECT_EQ(total, grams.size());
    // Every gram has length q and occurs in s.
    for (const auto& g : grams) {
      EXPECT_EQ(g.size(), q);
      EXPECT_NE(s.find(g), std::string::npos);
    }
  }
}

TEST_P(QGramCountProperty, SharedIsSymmetricAndBounded) {
  const size_t q = GetParam();
  Rng rng(q * 104729);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(20), "abc");
    std::string b = rng.RandomString(rng.Uniform(20), "abc");
    int shared = SharedQGrams(a, b, q);
    EXPECT_EQ(shared, SharedQGrams(b, a, q));
    EXPECT_LE(shared, static_cast<int>(QGramCount(a.size(), q)));
    EXPECT_LE(shared, static_cast<int>(QGramCount(b.size(), q)));
    EXPECT_EQ(SharedQGrams(a, a, q), static_cast<int>(QGramCount(a.size(), q)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QGramCountProperty,
                         ::testing::Values(1, 2, 3, 4, 7));

}  // namespace
}  // namespace mcsm::text
