#include "core/recipe.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "text/alignment.h"

namespace mcsm::core {
namespace {

std::vector<std::string> Render(const std::vector<TranslationFormula>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

bool Contains(const std::vector<TranslationFormula>& fs, const std::string& s) {
  for (const auto& f : fs) {
    if (f.ToString() == s) return true;
  }
  return false;
}

// Unwraps BuildFormulasFromRecipe, failing the test on error status.
std::vector<TranslationFormula> MustBuild(
    std::string_view target, const FixedCoverage& fixed,
    const text::RecipeAlignment& alignment, size_t key_column,
    size_t key_length, size_t max_variants, bool sized_unknowns = false) {
  auto formulas = BuildFormulasFromRecipe(target, fixed, alignment, key_column,
                                          key_length, max_variants,
                                          sized_unknowns);
  EXPECT_TRUE(formulas.ok()) << formulas.status().ToString();
  if (!formulas.ok()) return {};
  return *std::move(formulas);
}

TEST(FixedCoverageTest, NoneIsAllFree) {
  auto f = FixedCoverage::None(4);
  EXPECT_EQ(f.cover, (std::vector<int>{-1, -1, -1, -1}));
  EXPECT_EQ(f.FreeMask(), (std::vector<bool>{true, true, true, true}));
}

TEST(FixedCoverageTest, FromCapturePairsSpansWithRegions) {
  std::vector<relational::Span> spans = {{0, 1}, {2, 5}};
  auto f = FixedCoverage::FromCapture(
      7, spans, {Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->cover, (std::vector<int>{0, -1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(f->FreeMask(),
            (std::vector<bool>{false, true, false, false, false, false, false}));
}

TEST(FixedCoverageTest, MismatchedArityFails) {
  std::vector<relational::Span> spans = {{0, 1}};
  EXPECT_TRUE(FixedCoverage::FromCapture(3, spans, {}).status()
                  .IsInvalidArgument());
}

TEST(FixedCoverageTest, SpanBeyondTargetFails) {
  std::vector<relational::Span> spans = {{2, 5}};
  EXPECT_TRUE(FixedCoverage::FromCapture(3, spans, {Region::Literal("x")})
                  .status()
                  .IsOutOfRange());
}

// Recreates Table 5's recipe derivations via alignment + formula building.
TEST(RecipeTest, Table5WarnerToRhwarner) {
  // Key "warner" (column B3 = index 2) against target "rhwarner".
  auto alignment = text::AlignLcsAnchored("warner", "rhwarner");
  auto formulas = MustBuild(
      "rhwarner", FixedCoverage::None(8), alignment, 2, 6, 8);
  // Both the fixed span and the end-of-string clone (Table 5's first row).
  EXPECT_EQ(Render(formulas),
            (std::vector<std::string>{"%B3[1-6]", "%B3[1-n]"}));
}

TEST(RecipeTest, Table5WarnerToKlwarder) {
  auto alignment = text::AlignLcsAnchored("warner", "klwarder");
  auto formulas = MustBuild(
      "klwarder", FixedCoverage::None(8), alignment, 2, 6, 8);
  // Table 5: %B3[123]%B3[56] or %B3[123]%B3[5-n].
  EXPECT_TRUE(Contains(formulas, "%B3[1-3]%B3[5-6]"));
  EXPECT_TRUE(Contains(formulas, "%B3[1-3]%B3[5-n]"));
}

TEST(RecipeTest, Table5AmyToAmyrose) {
  // Key "amy" against "amyrose": B3[123]% / B3[1-n]%.
  auto alignment = text::AlignLcsAnchored("amy", "amyrose");
  auto formulas = MustBuild(
      "amyrose", FixedCoverage::None(7), alignment, 2, 3, 8);
  EXPECT_EQ(Render(formulas),
            (std::vector<std::string>{"B3[1-3]%", "B3[1-n]%"}));
}

TEST(RecipeTest, Table5AmyToCamyro) {
  auto alignment = text::AlignLcsAnchored("amy", "camyro");
  auto formulas = MustBuild(
      "camyro", FixedCoverage::None(6), alignment, 2, 3, 8);
  EXPECT_EQ(Render(formulas),
            (std::vector<std::string>{"%B3[1-3]%", "%B3[1-n]%"}));
}

TEST(RecipeTest, RefinementWithFixedRegions) {
  // Table 6/7: key "robert" (B1 = 0) against "rhkerry" whose "kerry" suffix
  // is already explained by %B3[1-n].
  std::vector<relational::Span> spans = {{2, 5}};
  auto fixed = FixedCoverage::FromCapture(7, spans, {Region::SpanToEnd(2, 1)});
  ASSERT_TRUE(fixed.ok());
  auto mask = fixed->FreeMask();
  auto alignment = text::AlignLcsAnchored("robert", "rhkerry", &mask);
  auto formulas =
      MustBuild("rhkerry", *fixed, alignment, 0, 6, 8);
  // Table 7's candidate: B1[1]%B3[1-n].
  EXPECT_TRUE(Contains(formulas, "B1[1-1]%B3[1-n]"));
}

TEST(RecipeTest, NoRunsReproducesFixedStructure) {
  std::vector<relational::Span> spans = {{2, 5}};
  auto fixed = FixedCoverage::FromCapture(7, spans, {Region::SpanToEnd(2, 1)});
  ASSERT_TRUE(fixed.ok());
  text::RecipeAlignment empty;
  auto formulas = MustBuild("rhkerry", *fixed, empty, 0, 6, 8);
  ASSERT_EQ(formulas.size(), 1u);
  EXPECT_EQ(formulas[0].ToString(), "%B3[1-n]");
}

TEST(RecipeTest, SizedUnknownsOnFixedWidthTargets) {
  // Key "04" matching "0423" at positions 0-1 with sized unknowns.
  auto alignment = text::AlignLcsAnchored("04", "0423");
  auto formulas = MustBuild(
      "0423", FixedCoverage::None(4), alignment, 1, 2, 8, /*sized=*/true);
  EXPECT_TRUE(Contains(formulas, "B2[1-2]%{2}"));
}

TEST(RecipeTest, ForkExpansionCapped) {
  // Alignment with two forkable runs would produce 4 variants; cap at 2.
  text::RecipeAlignment alignment;
  alignment.runs = {{1, 0, 2}, {1, 4, 2}};  // both end at key length 3
  auto capped = MustBuild("abcdef", FixedCoverage::None(6),
                                        alignment, 0, 3, 2);
  EXPECT_LE(capped.size(), 2u);
  auto full = MustBuild("abcdef", FixedCoverage::None(6),
                                      alignment, 0, 3, 8);
  EXPECT_EQ(full.size(), 4u);
}

TEST(RecipeTest, LiteralFixedRegionsPassThrough) {
  // Separator scenario: target "kerry, robert", the ", " literal fixed.
  std::vector<relational::Span> spans = {{5, 2}};
  auto fixed = FixedCoverage::FromCapture(13, spans, {Region::Literal(", ")});
  ASSERT_TRUE(fixed.ok());
  auto mask = fixed->FreeMask();
  auto alignment = text::AlignLcsAnchored("kerry", "kerry, robert", &mask);
  auto formulas = MustBuild("kerry, robert", *fixed, alignment,
                                          2, 5, 8);
  EXPECT_TRUE(Contains(formulas, "B3[1-n]\", \"%"));
  EXPECT_TRUE(Contains(formulas, "B3[1-5]\", \"%"));
}

// Malformed intermediate data degrades to an error status, not an abort
// (robustness satellite: former MCSM_CHECK on data-dependent input).
TEST(RecipeTest, CoverageLengthMismatchIsInvalidArgument) {
  auto alignment = text::AlignLcsAnchored("amy", "amyrose");
  auto formulas = BuildFormulasFromRecipe(
      "amyrose", FixedCoverage::None(5) /* wrong length */, alignment, 2, 3, 8);
  EXPECT_TRUE(formulas.status().IsInvalidArgument());
}

TEST(RecipeTest, CoverageEntryBeyondRegionsIsInvalidArgument) {
  FixedCoverage fixed = FixedCoverage::None(4);
  fixed.cover[1] = 2;  // no region 2 exists
  text::RecipeAlignment empty;
  auto formulas = BuildFormulasFromRecipe("abcd", fixed, empty, 0, 3, 8);
  EXPECT_TRUE(formulas.status().IsInvalidArgument());
}

}  // namespace
}  // namespace mcsm::core
