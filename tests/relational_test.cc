#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/sampler.h"
#include "relational/table.h"
#include "relational/value.h"

namespace mcsm::relational {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_integer());
  EXPECT_TRUE(Value(2.5).is_real());
  EXPECT_TRUE(Value("x").is_text());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(2.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, Display) {
  EXPECT_EQ(Value().ToDisplayString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToDisplayString(), "42");
  EXPECT_EQ(Value(2.0).ToDisplayString(), "2.0");
  EXPECT_EQ(Value("ab").ToDisplayString(), "ab");
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value().SqlEquals(Value()));
  EXPECT_FALSE(Value().SqlEquals(Value("x")));
  EXPECT_TRUE(Value(int64_t{2}).SqlEquals(Value(2.0)));
  EXPECT_TRUE(Value("a").SqlEquals(Value("a")));
  EXPECT_FALSE(Value("a").SqlEquals(Value(int64_t{1})));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);      // NULL < numeric
  EXPECT_LT(Value(int64_t{5}).Compare(Value("a")), 0);   // numeric < text
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);   // cross-type numeric
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema schema({{"First", ColumnType::kText}, {"last", ColumnType::kText}});
  EXPECT_EQ(schema.FindColumn("first").value(), 0u);
  EXPECT_EQ(schema.FindColumn("LAST").value(), 1u);
  EXPECT_FALSE(schema.FindColumn("middle").has_value());
}

TEST(TableTest, AppendAndAccess) {
  Table t = Table::WithTextColumns({"a", "b"});
  ASSERT_TRUE(t.AppendTextRow({"x", "y"}).ok());
  ASSERT_TRUE(t.AppendRow({Value("p"), Value::MakeNull()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.TextAt(0, 0).view(), "x");
  EXPECT_EQ(t.TextAt(1, 1).view(), "");  // NULL renders as empty view
  EXPECT_TRUE(t.ValueAt(1, 1).is_null());
  EXPECT_TRUE(t.IsNull(1, 1));
}

TEST(TableTest, TypeChecking) {
  Table t{Schema({{"n", ColumnType::kInteger}, {"r", ColumnType::kReal}})};
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(2.5)}).ok());
  // Integers widen into REAL columns.
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(int64_t{3})}).ok());
  EXPECT_TRUE(t.ValueAt(1, 1).is_real());
  // Text into INTEGER fails.
  EXPECT_TRUE(t.AppendRow({Value("x"), Value(1.0)}).IsTypeError());
  // Wrong arity fails.
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1})}).IsInvalidArgument());
}

TEST(TableTest, RemoveRows) {
  Table t = Table::WithTextColumns({"a"});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.AppendTextRow({std::to_string(i)}).ok());
  }
  // Duplicates and out-of-range indices are ignored.
  ASSERT_TRUE(t.RemoveRows({1, 3, 3, 99}).ok());
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.TextAt(0, 0).view(), "0");
  EXPECT_EQ(t.TextAt(1, 0).view(), "2");
  EXPECT_EQ(t.TextAt(2, 0).view(), "4");
  EXPECT_EQ(t.TextAt(3, 0).view(), "5");
}

TEST(TableTest, Truncate) {
  Table t = Table::WithTextColumns({"a"});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendTextRow({std::to_string(i)}).ok());
  }
  t.Truncate(2);
  EXPECT_EQ(t.num_rows(), 2u);
  t.Truncate(10);  // no-op
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T1", Table::WithTextColumns({"a"})).ok());
  EXPECT_TRUE(db.HasTable("t1"));  // case-insensitive
  EXPECT_TRUE(db.CreateTable("t1", Table{}).IsAlreadyExists());
  ASSERT_TRUE(db.GetTable("T1").ok());
  EXPECT_TRUE(db.GetTable("nope").status().IsNotFound());
  ASSERT_TRUE(db.DropTable("t1").ok());
  EXPECT_FALSE(db.HasTable("t1"));
  EXPECT_TRUE(db.DropTable("t1").IsNotFound());
}

TEST(SamplerTest, SampleSizeClamps) {
  EXPECT_EQ(SampleSize(0, 0.1, 1), 0u);
  EXPECT_EQ(SampleSize(100, 0.1, 1), 10u);
  EXPECT_EQ(SampleSize(5, 0.1, 3), 3u);
  EXPECT_EQ(SampleSize(2, 0.1, 5), 2u);  // capped at population
}

TEST(SamplerTest, EquidistantIndicesSpreadAndBounded) {
  auto idx = EquidistantIndices(100, 10);
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx[0], 0u);
  for (size_t i = 1; i < idx.size(); ++i) {
    EXPECT_GT(idx[i], idx[i - 1]);
    EXPECT_LT(idx[i], 100u);
  }
  // Gaps within 1 of each other (equal spacing).
  for (size_t i = 1; i < idx.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(idx[i] - idx[i - 1]), 10.0, 1.0);
  }
}

TEST(SamplerTest, EquidistantEdgeCases) {
  EXPECT_TRUE(EquidistantIndices(0, 5).empty());
  EXPECT_TRUE(EquidistantIndices(5, 0).empty());
  EXPECT_EQ(EquidistantIndices(3, 10).size(), 3u);  // t clamped to population
  auto all = EquidistantIndices(4, 4);
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace mcsm::relational
