#include "core/report.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace mcsm::core {
namespace {

using relational::Table;
using relational::Value;

TEST(ReportTest, CountsEveryRowOnce) {
  Table source = Table::WithTextColumns({"a"});
  Table target = Table::WithTextColumns({"t"});
  ASSERT_TRUE(source.AppendTextRow({"x"}).ok());      // covered
  ASSERT_TRUE(source.AppendTextRow({"y"}).ok());      // produced, unmatched
  ASSERT_TRUE(source.AppendRow({Value::MakeNull()}).ok());  // unsatisfiable
  ASSERT_TRUE(target.AppendTextRow({"x"}).ok());
  ASSERT_TRUE(target.AppendTextRow({"z"}).ok());      // unexplained

  TranslationFormula f({Region::SpanToEnd(0, 1)});
  auto report = EvaluateTranslation(f, source, target, 0);
  EXPECT_EQ(report.source_rows, 3u);
  EXPECT_EQ(report.target_rows, 2u);
  EXPECT_EQ(report.covered, 1u);
  EXPECT_EQ(report.produced_unmatched, 1u);
  EXPECT_EQ(report.unsatisfiable, 1u);
  EXPECT_EQ(report.target_unexplained, 1u);
  EXPECT_DOUBLE_EQ(report.CoverageFraction(), 0.5);
  EXPECT_DOUBLE_EQ(report.Precision(), 0.5);
  // Every source row lands in exactly one bucket.
  EXPECT_EQ(report.covered + report.produced_unmatched + report.unsatisfiable,
            report.source_rows);
}

TEST(ReportTest, IncompleteFormulaAllUnsatisfiable) {
  Table source = Table::WithTextColumns({"a"});
  Table target = Table::WithTextColumns({"t"});
  ASSERT_TRUE(source.AppendTextRow({"x"}).ok());
  ASSERT_TRUE(target.AppendTextRow({"x"}).ok());
  TranslationFormula f({Region::Unknown()});
  auto report = EvaluateTranslation(f, source, target, 0);
  EXPECT_EQ(report.unsatisfiable, 1u);
  EXPECT_EQ(report.covered, 0u);
}

TEST(ReportTest, UserIdDominantFormulaPrecision) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  TranslationFormula dominant({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  auto report = EvaluateTranslation(dominant, data.source, data.target, 0);
  // ~half the logins follow the dominant formula; the other produced values
  // (secondary/random logins) do not match.
  EXPECT_GT(report.CoverageFraction(), 0.4);
  EXPECT_LT(report.CoverageFraction(), 0.65);
  EXPECT_EQ(report.unsatisfiable, 0u);  // every row has first+last
  EXPECT_EQ(report.covered + report.produced_unmatched, report.source_rows);
  std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("covered"), std::string::npos);
  EXPECT_NE(rendered.find("precision"), std::string::npos);
}

TEST(ReportTest, ReportMatchesCoverageComputation) {
  datagen::TimeOptions o;
  o.rows = 500;
  auto data = datagen::MakeTimeDataset(o);
  TranslationFormula f({Region::Span(2, 1, 2), Region::Span(1, 1, 2),
                        Region::Span(0, 1, 2)});
  auto report = EvaluateTranslation(f, data.source, data.target, 0);
  auto coverage =
      TranslationSearch::ComputeCoverage(f, data.source, data.target, 0);
  EXPECT_EQ(report.covered, coverage.matched_rows());
  EXPECT_EQ(report.covered, 500u);
}

}  // namespace
}  // namespace mcsm::core
