#include "core/rule_merger.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace mcsm::core {
namespace {

using relational::Table;

TranslationFormula LoginDominant() {
  // first[1-1] + last[1-n]
  return TranslationFormula({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
}

TranslationFormula LoginSecondary() {
  // first[1-1] + middle[1-1] + last[1-n]
  return TranslationFormula(
      {Region::Span(0, 1, 1), Region::Span(1, 1, 1), Region::SpanToEnd(2, 1)});
}

TEST(MergedRuleTest, PaperSection7Example) {
  // "login = first[1-1]+middle[1-1]+last[1-n] would also encompass the rule
  // login = first[1-1]+last[1-n]".
  auto rule = MergedRule::Merge(LoginSecondary(), LoginDominant());
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->OptionalCount(), 1u);
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  EXPECT_EQ(rule->ToString(t.schema()),
            "first[1-1](middle[1-1])?last[1-n]");
}

TEST(MergedRuleTest, MergeIsSymmetric) {
  auto a = MergedRule::Merge(LoginDominant(), LoginSecondary());
  auto b = MergedRule::Merge(LoginSecondary(), LoginDominant());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(MergedRuleTest, NonEmbeddableFormulasDoNotMerge) {
  TranslationFormula other({Region::Span(3, 1, 2), Region::SpanToEnd(2, 1)});
  EXPECT_FALSE(MergedRule::Merge(LoginDominant(), other).has_value());
}

TEST(MergedRuleTest, IncompleteFormulasDoNotMerge) {
  TranslationFormula incomplete({Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_FALSE(MergedRule::Merge(incomplete, LoginDominant()).has_value());
}

TEST(MergedRuleTest, ExpansionsEnumerateBothFormulas) {
  auto rule = MergedRule::Merge(LoginSecondary(), LoginDominant());
  ASSERT_TRUE(rule.has_value());
  auto expansions = rule->Expansions();
  ASSERT_EQ(expansions.size(), 2u);
  EXPECT_EQ(expansions[0], LoginSecondary());  // most specific first
  EXPECT_EQ(expansions[1], LoginDominant());
}

TEST(MergedRuleTest, ExpansionCapRespected) {
  // Four optional regions -> 16 expansions, capped to 4.
  MergedRule rule = MergedRule::FromFormula(TranslationFormula(
      {Region::Span(0, 1, 1), Region::Span(1, 1, 1), Region::Span(2, 1, 1),
       Region::Span(3, 1, 1), Region::Span(4, 1, 1)}));
  auto merged = rule.MergedWith(TranslationFormula({Region::Span(0, 1, 1)}));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->OptionalCount(), 4u);
  EXPECT_LE(merged->Expansions(4).size(), 4u);
}

TEST(MergedRuleTest, SingletonRuleExpandsToItself) {
  MergedRule rule = MergedRule::FromFormula(LoginDominant());
  auto expansions = rule.Expansions();
  ASSERT_EQ(expansions.size(), 1u);
  EXPECT_EQ(expansions[0], LoginDominant());
}

TEST(MergedRuleTest, UnionCoverageEqualsSumOnUserId) {
  // The merged login rule must cover (at least) the union of what the two
  // formulas cover individually — the "greater coverage" the paper is after.
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  auto dominant_coverage = TranslationSearch::ComputeCoverage(
      LoginDominant(), data.source, data.target, 0);
  auto secondary_coverage = TranslationSearch::ComputeCoverage(
      LoginSecondary(), data.source, data.target, 0);
  auto rule = MergedRule::Merge(LoginDominant(), LoginSecondary());
  ASSERT_TRUE(rule.has_value());
  auto merged_coverage = rule->ComputeCoverage(data.source, data.target, 0);
  EXPECT_GE(merged_coverage.matched_rows(),
            std::max(dominant_coverage.matched_rows(),
                     secondary_coverage.matched_rows()));
  // The two login populations are disjoint, so the union is close to the sum
  // (a few collisions are possible via coincidental logins).
  EXPECT_GT(merged_coverage.matched_rows(),
            (dominant_coverage.matched_rows() +
             secondary_coverage.matched_rows()) * 9 / 10);
}

TEST(MergedRuleTest, CoverageUsesEachTargetRowOnce) {
  Table source = Table::WithTextColumns({"a", "b"});
  Table target = Table::WithTextColumns({"t"});
  ASSERT_TRUE(source.AppendTextRow({"x", "y"}).ok());
  ASSERT_TRUE(target.AppendTextRow({"xy"}).ok());
  // Rule (a[1-1])?(b[1-1])? with both parts... merge "xy" formula with "x".
  TranslationFormula both({Region::Span(0, 1, 1), Region::Span(1, 1, 1)});
  TranslationFormula first_only({Region::Span(0, 1, 1)});
  auto rule = MergedRule::Merge(both, first_only);
  ASSERT_TRUE(rule.has_value());
  auto coverage = rule->ComputeCoverage(source, target, 0);
  EXPECT_EQ(coverage.matched_rows(), 1u);  // "xy" matches, "x" not needed
}

TEST(MergeRulesTest, FoldsEmbeddableFormulas) {
  auto rules = MergeRules({LoginDominant(), LoginSecondary()});
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].OptionalCount(), 1u);
}

TEST(MergeRulesTest, KeepsUnrelatedFormulasSeparate) {
  TranslationFormula other({Region::SpanToEnd(5, 1)});
  auto rules = MergeRules({LoginDominant(), other});
  EXPECT_EQ(rules.size(), 2u);
}

TEST(MergeRulesTest, EmptyInput) {
  EXPECT_TRUE(MergeRules({}).empty());
}

}  // namespace
}  // namespace mcsm::core
