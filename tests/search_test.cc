#include "core/search.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/matcher.h"
#include "core/report.h"
#include "datagen/datasets.h"

namespace mcsm::core {
namespace {

// Small-scale end-to-end searches over the paper's scenarios. The full-size
// runs live in bench/; these guard the pipeline at ctest-friendly sizes.

SearchOptions FastOptions() {
  SearchOptions o;
  o.sample_fraction = 0.10;
  return o;
}

TEST(SearchTest, UserIdDominantFormula) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  auto d = DiscoverTranslation(data.source, data.target, 0, FastOptions());
  ASSERT_TRUE(d.ok()) << d.status();
  std::string formula = d->formula().ToString(data.source.schema());
  EXPECT_TRUE(formula == "first[1-1]last[1-n]" ||
              formula == "first[1-1]middle[1-1]last[1-n]")
      << formula;
  EXPECT_GT(d->coverage.matched_rows(), 300u);
  EXPECT_FALSE(d->sql.empty());
}

TEST(SearchTest, UserIdMatchAndRemoveFindsBothFormulas) {
  datagen::UserIdOptions o;
  o.rows = 3000;
  auto data = datagen::MakeUserIdDataset(o);
  auto all = DiscoverAllTranslations(data.source, data.target, 0,
                                     FastOptions(), 4, 50);
  ASSERT_TRUE(all.ok());
  std::set<std::string> found;
  for (const auto& d : *all) {
    found.insert(d.formula().ToString(data.source.schema()));
  }
  EXPECT_TRUE(found.count("first[1-1]last[1-n]") == 1) << all->size();
  EXPECT_TRUE(found.count("first[1-1]middle[1-1]last[1-n]") == 1);
}

TEST(SearchTest, TimeConcatenation) {
  datagen::TimeOptions o;
  o.rows = 3000;
  auto data = datagen::MakeTimeDataset(o);
  auto d = DiscoverTranslation(data.source, data.target, 0, FastOptions());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->formula().ToString(data.source.schema()),
            "hrs[1-2]mins[1-2]secs[1-2]");
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, MergedNamesConcatenation) {
  datagen::MergedNamesOptions o;
  o.rows = 4000;
  o.distinct_names = 800;
  auto data = datagen::MakeMergedNamesDataset(o);
  auto d = DiscoverTranslation(data.source, data.target, 0, FastOptions());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->formula().ToString(data.source.schema()),
            "first[1-n]last[1-n]");
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, CommaSeparatorRecovered) {
  datagen::MergedNamesOptions o;
  o.rows = 3000;
  o.distinct_names = 600;
  o.comma_separator = true;
  auto data = datagen::MakeMergedNamesDataset(o);
  SearchOptions so = FastOptions();
  so.detect_separators = true;
  auto d = DiscoverTranslation(data.source, data.target, 0, so);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->formula().ToString(data.source.schema()),
            "last[1-n]\", \"first[1-n]");
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, DateFormatTranslation) {
  datagen::DateFormatOptions o;
  o.rows = 3000;
  auto data = datagen::MakeDateFormatDataset(o);
  SearchOptions so = FastOptions();
  so.detect_separators = true;
  auto d = DiscoverTranslation(data.source, data.target, 0, so);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->formula().ToString(data.source.schema()),
            "date[6-7]\"/\"date[9-10]\"/\"date[1-4]");
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, PartNumberSeparators) {
  // Section 6.1's "FRU-13423-2005" example: two hyphens, three fields.
  datagen::PartNumberOptions o;
  o.rows = 3000;
  auto data = datagen::MakePartNumberDataset(o);
  SearchOptions so = FastOptions();
  so.detect_separators = true;
  auto d = DiscoverTranslation(data.source, data.target, 0, so);
  ASSERT_TRUE(d.ok()) << d.status();
  std::string formula = d->formula().ToString(data.source.schema());
  // All three fields are fixed width, so the sized rendering ([1-3] etc.)
  // denotes the same translation as the to-end one.
  EXPECT_TRUE(formula == "plant[1-n]\"-\"serial[1-n]\"-\"year[1-n]" ||
              formula == "plant[1-3]\"-\"serial[1-5]\"-\"year[1-4]")
      << formula;
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, CitationConcatenation) {
  datagen::CitationOptions o;
  o.rows = 5000;
  auto data = datagen::MakeCitationDataset(o);
  SearchOptions so;
  so.sample_fraction = 0.02;
  auto d = DiscoverTranslation(data.source, data.target, 0, so);
  ASSERT_TRUE(d.ok()) << d.status();
  std::string formula = d->formula().ToString(data.source.schema());
  // year[1-4] and year[1-n] are observationally identical (years are 4
  // chars); accept either rendering.
  EXPECT_TRUE(formula == "year[1-4]title[1-n]author1[1-n]" ||
              formula == "year[1-n]title[1-n]author1[1-n]")
      << formula;
  EXPECT_EQ(d->coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, StepwiseApiReportsScores) {
  datagen::UserIdOptions o;
  o.rows = 1000;
  auto data = datagen::MakeUserIdDataset(o);
  TranslationSearch search(data.source, data.target, 0, FastOptions());
  auto col = search.SelectStartColumn();
  ASSERT_TRUE(col.ok());
  const std::vector<double>& scores = col->scores;
  ASSERT_EQ(scores.size(), data.source.num_columns());
  // The name columns must outscore every noise column (Table 2's shape;
  // the paper's own first/last scores are within 15%% of each other, so the
  // argmax between them is sample-dependent).
  size_t last = *data.source.schema().FindColumn("last");
  size_t first = *data.source.schema().FindColumn("first");
  for (size_t c = 0; c < scores.size(); ++c) {
    std::string name = data.source.schema().column(c).name;
    if (name == "text" || name == "time" || name == "numb" || name == "addr") {
      EXPECT_GT(scores[last], scores[c]) << name;
      EXPECT_GT(scores[first], scores[c]) << name;
    }
  }
  EXPECT_TRUE(col->best_column == last || col->best_column == first);
}

TEST(SearchTest, InitialFormulaFromStartColumn) {
  datagen::UserIdOptions o;
  o.rows = 1000;
  auto data = datagen::MakeUserIdDataset(o);
  TranslationSearch search(data.source, data.target, 0, FastOptions());
  auto f = search.BuildInitialFormula(
      *data.source.schema().FindColumn("last"));
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->ToString(data.source.schema()), "%last[1-n]");
}

TEST(SearchTest, LinkageConstrainsAndAccelerates) {
  datagen::UserIdOptions o;
  o.rows = 1500;
  o.with_dates = true;
  auto data = datagen::MakeUserIdDataset(o);

  // Known login translation provides the row linkage (Section 6.2).
  TranslationFormula login({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  auto linkage = BuildLinkage(login, data.source, data.target, 0);
  size_t linked = 0;
  for (size_t l : linkage) {
    if (l != TranslationSearch::kNoLink) ++linked;
  }
  EXPECT_GT(linked, 400u);

  SearchOptions so = FastOptions();
  so.detect_separators = true;
  TranslationSearch dob(data.source, data.target, 1, so);
  dob.SetLinkage(linkage);
  auto result = dob.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->formula.ToString(data.source.schema()),
            "birth[1-2]\"/\"birth[4-5]\"/\"birth[9-10]");
  auto coverage =
      TranslationSearch::ComputeCoverage(result->formula, data.source,
                                         data.target, 1);
  EXPECT_EQ(coverage.matched_rows(), data.target.num_rows());
}

TEST(SearchTest, CoverageLinksEachTargetRowOnce) {
  relational::Table source = relational::Table::WithTextColumns({"a"});
  relational::Table target = relational::Table::WithTextColumns({"t"});
  // Two source rows produce "x", but only one target "x" exists.
  ASSERT_TRUE(source.AppendTextRow({"x"}).ok());
  ASSERT_TRUE(source.AppendTextRow({"x"}).ok());
  ASSERT_TRUE(target.AppendTextRow({"x"}).ok());
  TranslationFormula f({Region::SpanToEnd(0, 1)});
  auto coverage = TranslationSearch::ComputeCoverage(f, source, target, 0);
  EXPECT_EQ(coverage.matched_rows(), 1u);
}

TEST(SearchTest, CoverageOfIncompleteFormulaIsEmpty) {
  relational::Table source = relational::Table::WithTextColumns({"a"});
  relational::Table target = relational::Table::WithTextColumns({"t"});
  ASSERT_TRUE(source.AppendTextRow({"x"}).ok());
  ASSERT_TRUE(target.AppendTextRow({"x"}).ok());
  TranslationFormula f({Region::Unknown()});
  EXPECT_EQ(TranslationSearch::ComputeCoverage(f, source, target, 0)
                .matched_rows(),
            0u);
}

TEST(SearchTest, RobustnessToUnmatchedRows) {
  // Section 4.1's sweep: with a moderate number of extra unmatched source
  // rows the dominant formula is still found.
  datagen::UserIdOptions o;
  o.rows = 1500;
  o.extra_unmatched_rows = 500;
  auto data = datagen::MakeUserIdDataset(o);
  auto d = DiscoverTranslation(data.source, data.target, 0, FastOptions());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->formula().IsComplete());
  EXPECT_GT(d->coverage.matched_rows(), 200u);
}

TEST(SearchTest, NoSharedContentFails) {
  relational::Table source = relational::Table::WithTextColumns({"a"});
  relational::Table target = relational::Table::WithTextColumns({"t"});
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(source.AppendTextRow({"aaaa"}).ok());
    ASSERT_TRUE(target.AppendTextRow({"zzzz"}).ok());
  }
  TranslationSearch search(source, target, 0, FastOptions());
  auto result = search.Run();
  EXPECT_FALSE(result.ok());
}

TEST(SearchTest, StatsAreRecorded) {
  datagen::UserIdOptions o;
  o.rows = 800;
  auto data = datagen::MakeUserIdDataset(o);
  TranslationSearch search(data.source, data.target, 0, FastOptions());
  auto result = search.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.step1_seconds, 0.0);
  EXPECT_GT(result->stats.step2_seconds, 0.0);
  EXPECT_GT(result->stats.recipes_built, 0u);
  EXPECT_GT(result->stats.pairs_scored, 0u);
  EXPECT_GT(result->stats.total_seconds(), 0.0);
}

// Determinism contract of the parallel pipeline: the same input must yield
// byte-identical results for every thread count (workers fill pre-sized
// slots merged in index order — see DESIGN.md). `seconds` fields are the
// only permitted difference, so snapshots exclude them.
struct RunSnapshot {
  std::string formula;
  size_t start_column = 0;
  std::vector<std::tuple<size_t, std::string, size_t, double>> iterations;
  size_t covered = 0;
  std::string report;

  bool operator==(const RunSnapshot&) const = default;
};

RunSnapshot SnapshotRun(const datagen::Dataset& data, SearchOptions options,
                        size_t threads) {
  options.num_threads = threads;
  auto d = DiscoverTranslation(data.source, data.target, data.target_column,
                               options);
  EXPECT_TRUE(d.ok()) << d.status();
  RunSnapshot snap;
  if (!d.ok()) return snap;
  snap.formula = d->formula().ToString(data.source.schema());
  snap.start_column = d->search.start_column;
  for (const auto& it : d->search.iterations) {
    snap.iterations.emplace_back(it.chosen_column, it.formula, it.support,
                                 it.score);
  }
  snap.covered = d->coverage.matched_rows();
  snap.report = EvaluateTranslation(d->formula(), data.source, data.target,
                                    data.target_column)
                    .ToString();
  return snap;
}

TEST(SearchParallelTest, CitationRunIsIdenticalAcrossThreadCounts) {
  datagen::CitationOptions o;
  o.rows = 3000;
  auto data = datagen::MakeCitationDataset(o);
  SearchOptions so;
  so.sample_fraction = 0.02;
  RunSnapshot one = SnapshotRun(data, so, 1);
  RunSnapshot two = SnapshotRun(data, so, 2);
  RunSnapshot eight = SnapshotRun(data, so, 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_FALSE(one.formula.empty());
}

TEST(SearchParallelTest, MergedNamesRunIsIdenticalAcrossThreadCounts) {
  datagen::MergedNamesOptions o;
  o.rows = 4000;
  o.distinct_names = 800;
  auto data = datagen::MakeMergedNamesDataset(o);
  RunSnapshot one = SnapshotRun(data, FastOptions(), 1);
  RunSnapshot two = SnapshotRun(data, FastOptions(), 2);
  RunSnapshot eight = SnapshotRun(data, FastOptions(), 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.formula, "first[1-n]last[1-n]");
}

TEST(SearchParallelTest, BudgetTruncationTripsTheSameAxisAtAnyThreadCount) {
  datagen::CitationOptions o;
  o.rows = 3000;
  auto data = datagen::MakeCitationDataset(o);
  for (size_t threads : {1u, 2u, 8u}) {
    SearchOptions so;
    so.sample_fraction = 0.02;
    so.num_threads = threads;
    // Only the postings axis is capped, so it is the only axis that can
    // trip; where exactly the trip lands may vary with scheduling, the
    // recorded axis must not.
    so.env.budget.max_postings_scanned = 2000;
    TranslationSearch search(data.source, data.target, data.target_column, so);
    auto result = search.Run();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->truncated) << threads;
    EXPECT_EQ(result->budget_trip, BudgetTrip::kPostings) << threads;
    EXPECT_EQ(search.budget().trip(), BudgetTrip::kPostings);
  }
}

TEST(SearchTest, InjectedIndexForDifferentTableIsRejected) {
  // A cached index whose q/column/postings all match but which was built
  // over a DIFFERENT table must be rejected (row-count mismatch) and fall
  // back to a local build — injecting it must not change results.
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);
  datagen::UserIdOptions stale_options = o;
  stale_options.rows = 400;
  auto stale = datagen::MakeUserIdDataset(stale_options);

  relational::ColumnIndex::Options idx;
  idx.q = 2;
  idx.build_postings = true;
  SearchOptions injected_options = FastOptions();
  injected_options.env.target_index =
      std::make_shared<relational::ColumnIndex>(stale.target, 0, idx);

  auto clean = DiscoverTranslation(data.source, data.target, 0, FastOptions());
  auto injected =
      DiscoverTranslation(data.source, data.target, 0, injected_options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(injected.ok()) << injected.status();
  EXPECT_EQ(injected->formula().ToString(data.source.schema()),
            clean->formula().ToString(data.source.schema()));
  EXPECT_EQ(injected->coverage.matched_rows(),
            clean->coverage.matched_rows());
}

TEST(SearchParallelTest, StepwiseScoresAreIdenticalAcrossThreadCounts) {
  datagen::UserIdOptions o;
  o.rows = 1000;
  auto data = datagen::MakeUserIdDataset(o);
  std::vector<std::vector<double>> per_thread_scores;
  for (size_t threads : {1u, 2u, 8u}) {
    SearchOptions so = FastOptions();
    so.num_threads = threads;
    TranslationSearch search(data.source, data.target, 0, so);
    auto col = search.SelectStartColumn();
    ASSERT_TRUE(col.ok());
    per_thread_scores.push_back(std::move(col->scores));
  }
  // Bitwise equality, not tolerance: the merge order fixes the float
  // accumulation order.
  EXPECT_EQ(per_thread_scores[0], per_thread_scores[1]);
  EXPECT_EQ(per_thread_scores[0], per_thread_scores[2]);
}

}  // namespace
}  // namespace mcsm::core
