#include "core/separator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/corpus.h"

namespace mcsm::core {
namespace {

using relational::Table;

Table ColumnOf(const std::vector<std::string>& values) {
  Table t = Table::WithTextColumns({"a"});
  for (const auto& v : values) EXPECT_TRUE(t.AppendTextRow({v}).ok());
  return t;
}

TEST(SeparatorTest, IsSeparatorChar) {
  EXPECT_TRUE(SeparatorDetector::IsSeparatorChar(':'));
  EXPECT_TRUE(SeparatorDetector::IsSeparatorChar(' '));
  EXPECT_TRUE(SeparatorDetector::IsSeparatorChar('-'));
  EXPECT_FALSE(SeparatorDetector::IsSeparatorChar('a'));
  EXPECT_FALSE(SeparatorDetector::IsSeparatorChar('7'));
}

TEST(SeparatorTest, FixedWidthTimestamps) {
  // Section 6.1: "given a column of instances of timestamps of the form
  // '11:45:34', the algorithm would return '%:%:%'".
  Table t = ColumnOf({"11:45:34", "04:12:53", "23:59:59"});
  auto tmpl = SeparatorDetector::DetectFixedWidth(t, 0);
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(tmpl->ToLikeString(), "%:%:%");
}

TEST(SeparatorTest, FixedWidthRejectsVariableWidth) {
  Table t = ColumnOf({"11:45:34", "1:2:3"});
  EXPECT_FALSE(SeparatorDetector::DetectFixedWidth(t, 0).has_value());
}

TEST(SeparatorTest, FixedWidthRejectsInconsistentSeparator) {
  Table t = ColumnOf({"11:45", "11-45"});
  EXPECT_FALSE(SeparatorDetector::DetectFixedWidth(t, 0).has_value());
}

TEST(SeparatorTest, FixedWidthNoSeparators) {
  Table t = ColumnOf({"abcd", "efgh"});
  EXPECT_FALSE(SeparatorDetector::DetectFixedWidth(t, 0).has_value());
}

TEST(SeparatorTest, GeneralDetectorOnFixedWidth) {
  Table t = ColumnOf({"11:45:34", "04:12:53", "23:59:59"});
  auto tmpl = SeparatorDetector::Detect(t, 0);
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(tmpl->ToLikeString(), "%:%:%");
}

TEST(SeparatorTest, VariableWidthCommaSpace) {
  // Table 11: "last, first" with variable lengths must recover "%, %".
  Rng rng(21);
  std::vector<std::string> values;
  const auto& firsts = datagen::FirstNames();
  const auto& lasts = datagen::LastNames();
  for (int i = 0; i < 500; ++i) {
    values.push_back(lasts[rng.Uniform(lasts.size())] + ", " +
                     firsts[rng.Uniform(firsts.size())]);
  }
  Table t = ColumnOf(values);
  auto tmpl = SeparatorDetector::Detect(t, 0);
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(tmpl->ToLikeString(), "%, %");
  // Every instance matches the recovered template.
  for (const auto& v : values) EXPECT_TRUE(tmpl->Matches(v));
}

TEST(SeparatorTest, DateSlashes) {
  Rng rng(5);
  std::vector<std::string> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(StrFormat("%02d/%02d/%04d", 1 + (int)rng.Uniform(12),
                               1 + (int)rng.Uniform(28),
                               1920 + (int)rng.Uniform(90)));
  }
  Table t = ColumnOf(values);
  auto tmpl = SeparatorDetector::Detect(t, 0);
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(tmpl->ToLikeString(), "%/%/%");
}

TEST(SeparatorTest, NoSeparatorColumnReturnsNothing) {
  Rng rng(9);
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.RandomString(8, "abc"));
  Table t = ColumnOf(values);
  EXPECT_FALSE(SeparatorDetector::Detect(t, 0).has_value());
}

TEST(SeparatorTest, SeparatorMissingFromSomeInstancesRejected) {
  // The template must match ALL instances; one exception kills it.
  std::vector<std::string> values(50, "ab-cd");
  values.push_back("abcde");
  Table t = ColumnOf(values);
  EXPECT_FALSE(SeparatorDetector::Detect(t, 0).has_value());
}

TEST(SeparatorTest, HistogramCountsRelativePositions) {
  // Figure 4's data: comma and space counts clustered mid-string.
  Table t = ColumnOf({"ab, cd", "xy, zw"});
  auto histogram = SeparatorDetector::BuildHistogram(t, 0);
  size_t comma_total = 0, space_total = 0;
  for (const auto& e : histogram) {
    if (e.separator == ',') comma_total += e.count;
    if (e.separator == ' ') space_total += e.count;
  }
  EXPECT_EQ(comma_total, 2u);
  EXPECT_EQ(space_total, 2u);
}

TEST(SeparatorTest, TemplateSeparatorChars) {
  Table t = ColumnOf({"11:45:34", "04:12:53"});
  auto tmpl = SeparatorDetector::Detect(t, 0);
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(SeparatorDetector::TemplateSeparatorChars(*tmpl), ":");
}

TEST(SeparatorTest, EmptyColumn) {
  Table t = Table::WithTextColumns({"a"});
  EXPECT_FALSE(SeparatorDetector::Detect(t, 0).has_value());
  EXPECT_FALSE(SeparatorDetector::DetectFixedWidth(t, 0).has_value());
}

}  // namespace
}  // namespace mcsm::core
