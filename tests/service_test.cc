// Unit and integration coverage for the discovery service subsystem: JSON
// parse/serialize, the HTTP request parser, the table registry, the
// byte-budgeted index cache, the async job manager (deadlines, cancellation,
// backpressure, determinism), the route layer, and one socket-level
// end-to-end pass through HttpServer.

#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "service/http.h"
#include "service/job_manager.h"
#include "service/json.h"
#include "service/metrics.h"
#include "service/registry.h"
#include "service/service.h"

namespace mcsm::service {
namespace {

// ---------------------------------------------------------------- JSON ----

TEST(JsonTest, DumpsScalarsAndContainers) {
  Json obj = Json::Object();
  obj.Set("name", Json::Str("henry"));
  obj.Set("count", Json::Number(3));
  obj.Set("ratio", Json::Number(0.5));
  obj.Set("ok", Json::Bool(true));
  obj.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Append(Json::Number(1));
  arr.Append(Json::Number(2));
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            R"({"name":"henry","count":3,"ratio":0.5,"ok":true,)"
            R"("nothing":null,"items":[1,2]})");
}

TEST(JsonTest, EscapesStrings) {
  Json s = Json::Str("a\"b\\c\nd\te\x01");
  EXPECT_EQ(s.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, IntegralNumbersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json::Number(42).Dump(), "42");
  EXPECT_EQ(Json::Number(-7).Dump(), "-7");
  EXPECT_EQ(Json::Number(2.5).Dump(), "2.5");
}

TEST(JsonTest, ParsesRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-3],"b":{"c":"x","d":true},"e":null,"f":false})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), text);
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(1).AsNumber(0), 2.5);
  const Json* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_EQ(b->Find("c")->AsString(""), "x");
}

TEST(JsonTest, ParsesStringEscapes) {
  auto parsed = Json::Parse(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->AsString(""), "a\"b\\c\ndA\xC3\xA9");
}

TEST(JsonTest, ParsesSurrogatePair) {
  auto parsed = Json::Parse(R"("😀")");  // U+1F600
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->AsString(""), "\xF0\x9F\x98\x80");
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());       // unpaired high
  EXPECT_FALSE(Json::Parse(R"("\ude00")").ok());       // unpaired low
  EXPECT_FALSE(Json::Parse(R"("\ud83dxx")").ok());     // no low after high
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "[1 2]", "tru", "01", "1.",
        "1e", "\"unterminated", "{}x", "nul", "\"\x01\"", "--1", "+1"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonTest, WhitespaceTolerated) {
  auto parsed = Json::Parse("  {\r\n \"a\" :\t[ 1 , 2 ] }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), R"({"a":[1,2]})");
}

TEST(JsonTest, DepthCapStopsDeepNesting) {
  std::string deep(Json::kMaxDepth + 8, '[');
  deep += std::string(Json::kMaxDepth + 8, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
  std::string ok_depth(8, '[');
  ok_depth += std::string(8, ']');
  EXPECT_TRUE(Json::Parse(ok_depth).ok());
}

TEST(JsonTest, SetReplacesExistingKey) {
  Json obj = Json::Object();
  obj.Set("k", Json::Number(1));
  obj.Set("k", Json::Number(2));
  EXPECT_EQ(obj.Dump(), R"({"k":2})");
}

// ---------------------------------------------------------------- HTTP ----

HttpLimits TestLimits() { return HttpLimits{}; }

TEST(HttpParserTest, ParsesRequestWithBody) {
  const std::string raw =
      "POST /jobs?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "abcd";
  size_t head_end = FindHeadEnd(raw);
  ASSERT_GT(head_end, 0u);
  auto parsed = ParseHttpRequest(raw, head_end, TestLimits());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/jobs");
  EXPECT_EQ(parsed->query, "x=1");
  EXPECT_EQ(parsed->Header("content-type"), "application/json");
  EXPECT_EQ(parsed->Header("host"), "localhost");
  EXPECT_EQ(parsed->body, "abcd");
}

TEST(HttpParserTest, HeaderNamesAreCaseFolded) {
  const std::string raw =
      "GET / HTTP/1.1\r\nX-ThInG:  padded value \r\n\r\n";
  auto parsed = ParseHttpRequest(raw, FindHeadEnd(raw), TestLimits());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Header("x-thing"), "padded value");
}

TEST(HttpParserTest, RejectsMalformedInput) {
  auto reject = [](const std::string& raw) {
    size_t head_end = FindHeadEnd(raw);
    if (head_end == 0) return true;  // never completes: also a rejection
    return !ParseHttpRequest(raw, head_end, TestLimits()).ok();
  };
  EXPECT_TRUE(reject("GET\r\n\r\n"));                      // no target
  EXPECT_TRUE(reject("get / HTTP/1.1\r\n\r\n"));           // lowercase method
  EXPECT_TRUE(reject("GET / HTTP/2.0\r\n\r\n"));           // bad version
  EXPECT_TRUE(reject("GET relative HTTP/1.1\r\n\r\n"));    // non-absolute
  EXPECT_TRUE(reject("GET / HTTP/1.1\r\nBad Header: x\r\n\r\n"));
  EXPECT_TRUE(reject("GET / HTTP/1.1\r\n: empty\r\n\r\n"));
  EXPECT_TRUE(
      reject("GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"));
  EXPECT_TRUE(
      reject("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
}

TEST(HttpParserTest, EnforcesLimits) {
  HttpLimits limits;
  limits.max_headers = 2;
  const std::string raw =
      "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
  EXPECT_FALSE(ParseHttpRequest(raw, FindHeadEnd(raw), limits).ok());

  HttpLimits body_limits;
  body_limits.max_body_bytes = 2;
  const std::string big =
      "POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  EXPECT_FALSE(ParseHttpRequest(big, FindHeadEnd(big), body_limits).ok());
}

TEST(HttpParserTest, SerializeResponseIsWellFormed) {
  HttpResponse response;
  response.status = 429;
  response.body = "{}";
  std::string wire = SerializeResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// ------------------------------------------------------------- metrics ----

TEST(MetricsTest, HistogramBucketsAreCumulative) {
  LatencyHistogram histogram;
  histogram.Record(1);
  histogram.Record(3);
  histogram.Record(40);
  histogram.Record(999999);  // overflow bucket
  EXPECT_EQ(histogram.count(), 4u);
  std::string out;
  histogram.Render("lat", &out);
  EXPECT_NE(out.find("lat_ms_le_1 1\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_le_5 2\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_le_50 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_le_5000 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_le_inf 4\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_count 4\n"), std::string::npos);
}

// ------------------------------------------------------------ registry ----

TEST(RegistryTest, FingerprintIsStableAndSensitive) {
  EXPECT_EQ(FingerprintBytes("abc"), FingerprintBytes("abc"));
  EXPECT_NE(FingerprintBytes("abc"), FingerprintBytes("abd"));
  EXPECT_NE(FingerprintBytes(""), FingerprintBytes("a"));
}

TEST(RegistryTest, RegisterFindAndDedup) {
  TableRegistry registry;
  auto first = registry.RegisterCsv("t", "a,b\n1,2\n");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->rows, 1u);
  EXPECT_EQ(first->columns, 2u);

  // Identical content: same underlying table object (no reparse).
  auto again = registry.RegisterCsv("t", "a,b\n1,2\n");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->table.get(), first->table.get());

  // New content under the same name replaces the binding...
  auto replaced = registry.RegisterCsv("t", "a,b\n1,2\n3,4\n");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->rows, 2u);
  EXPECT_NE(replaced->table.get(), first->table.get());
  // ...while the old shared_ptr keeps the old table alive.
  EXPECT_EQ(first->table->num_rows(), 1u);

  EXPECT_EQ(registry.Find("t").table.get(), replaced->table.get());
  EXPECT_EQ(registry.Find("missing").table, nullptr);
  EXPECT_FALSE(registry.RegisterCsv("", "a\n1\n").ok());
  EXPECT_FALSE(registry.RegisterCsv("bad", "").ok());
}

TEST(IndexCacheTest, HitsMissesAndSharing) {
  TableRegistry registry;
  auto entry = registry.RegisterCsv("t", "a,b\nhenry,warner\nanna,smith\n");
  ASSERT_TRUE(entry.ok());

  IndexCache cache(64 * 1024 * 1024);
  relational::ColumnIndex::Options options;
  options.q = 2;
  auto first = cache.GetOrBuild(entry->table, entry->fingerprint, 0, options);
  ASSERT_NE(first, nullptr);
  auto second = cache.GetOrBuild(entry->table, entry->fingerprint, 0, options);
  EXPECT_EQ(first.get(), second.get());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // Different column / q / postings are distinct entries.
  cache.GetOrBuild(entry->table, entry->fingerprint, 1, options);
  relational::ColumnIndex::Options with_postings = options;
  with_postings.build_postings = true;
  cache.GetOrBuild(entry->table, entry->fingerprint, 0, with_postings);
  EXPECT_EQ(cache.stats().entries, 3u);

  EXPECT_EQ(cache.GetOrBuild(nullptr, 0, 0, options), nullptr);
  EXPECT_EQ(cache.GetOrBuild(entry->table, entry->fingerprint, 99, options),
            nullptr);
}

TEST(IndexCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  TableRegistry registry;
  auto entry = registry.RegisterCsv(
      "t", "a,b,c\nhenry,warner,smith\nanna,jones,brown\n");
  ASSERT_TRUE(entry.ok());

  relational::ColumnIndex::Options options;
  options.q = 2;
  // Budget below two entries: inserting a second evicts the first unless it
  // was just touched.
  relational::ColumnIndex probe(*entry->table, 0, options);
  IndexCache cache(probe.ApproxMemoryBytes() + probe.ApproxMemoryBytes() / 2);

  auto a = cache.GetOrBuild(entry->table, entry->fingerprint, 0, options);
  auto b = cache.GetOrBuild(entry->table, entry->fingerprint, 1, options);
  IndexCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, 2u);

  // The evicted index is still usable by holders of the shared_ptr.
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->distinct_count(), 0u);

  // An oversized single entry still caches (everything else evicts).
  IndexCache tiny(1);
  auto c = tiny.GetOrBuild(entry->table, entry->fingerprint, 2, options);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(tiny.stats().entries, 1u);
}

// --------------------------------------------------------- job manager ----

class JobManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    datagen::UserIdOptions options;
    options.rows = 300;
    dataset_ = datagen::MakeUserIdDataset(options);
    auto source = registry_.RegisterCsv(
        "people", relational::WriteCsv(dataset_.source));
    ASSERT_TRUE(source.ok()) << source.status();
    auto target = registry_.RegisterCsv(
        "logins", relational::WriteCsv(dataset_.target));
    ASSERT_TRUE(target.ok()) << target.status();
  }
  void TearDown() override { failpoint::DisarmAll(); }

  JobRequest MakeRequest() {
    JobRequest request;
    request.source_table = "people";
    request.target_table = "logins";
    request.target_column = dataset_.target_column;
    return request;
  }

  datagen::Dataset dataset_;
  TableRegistry registry_;
  IndexCache cache_{64 * 1024 * 1024};
};

// Builds JobManager options by name so appending fields to Options (the
// admission-gate knobs) never trips -Wmissing-field-initializers here.
JobManager::Options WorkerOptions(size_t workers, size_t max_queue) {
  JobManager::Options options;
  options.workers = workers;
  options.max_queue = max_queue;
  return options;
}

TEST_F(JobManagerTest, RunsJobToDone) {
  JobManager manager(&registry_, &cache_, WorkerOptions(2, 8));
  auto id = manager.Submit(MakeRequest());
  ASSERT_TRUE(id.ok()) << id.status();
  manager.Drain();

  auto snapshot = manager.Get(id.value());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_FALSE(snapshot->truncated);
  EXPECT_FALSE(snapshot->formula.empty());
  EXPECT_GT(snapshot->matched_rows, 0u);
  EXPECT_EQ(manager.completed(), 1u);

  // The job warmed the cache: a second identical job hits it.
  const uint64_t misses_before = cache_.stats().misses;
  auto second = manager.Submit(MakeRequest());
  ASSERT_TRUE(second.ok());
  manager.Drain();
  EXPECT_GT(cache_.stats().hits, 0u);
  EXPECT_EQ(cache_.stats().misses, misses_before);
}

TEST_F(JobManagerTest, ValidatesRequests) {
  JobManager manager(&registry_, &cache_, WorkerOptions(2, 8));
  JobRequest request = MakeRequest();
  request.source_table = "nope";
  EXPECT_TRUE(manager.Submit(request).status().IsNotFound());
  request = MakeRequest();
  request.target_column = 99;
  EXPECT_TRUE(manager.Submit(request).status().IsInvalidArgument());
  request = MakeRequest();
  request.deadline_ms = -5;
  EXPECT_TRUE(manager.Submit(request).status().IsInvalidArgument());
  EXPECT_FALSE(manager.Get(12345).ok());
  EXPECT_FALSE(manager.Cancel(12345));
}

TEST_F(JobManagerTest, RejectsWhenQueueFull) {
  // One worker stalled by the service.job delay failpoint; queue of 1.
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, "delay:200ms").ok());
  JobManager manager(&registry_, &cache_, WorkerOptions(1, 1));

  auto first = manager.Submit(MakeRequest());   // taken by the worker
  ASSERT_TRUE(first.ok());
  // Give the worker a moment to pop the first job off the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second = manager.Submit(MakeRequest());  // sits in the queue
  ASSERT_TRUE(second.ok());

  // Queue is now full: the next submit must bounce with ResourceExhausted.
  auto third = manager.Submit(MakeRequest());
  EXPECT_TRUE(third.status().IsResourceExhausted()) << third.status();
  EXPECT_EQ(manager.rejected(), 1u);

  manager.Drain();
  EXPECT_EQ(manager.completed(), 2u);
}

TEST_F(JobManagerTest, DegradesBeforeShedding) {
  // One worker stalled; watermark at queue depth 1, shed at 3. The ladder
  // must be: full-cost job, degraded jobs, THEN the first 429.
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, "delay:200ms").ok());
  JobManager::Options options;
  options.workers = 1;
  options.max_queue = 3;
  options.degrade_at = 1;
  options.degraded_limits.max_candidate_formulas = 256;
  JobManager manager(&registry_, &cache_, options);

  auto first = manager.Submit(MakeRequest());  // taken by the worker
  ASSERT_TRUE(first.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second = manager.Submit(MakeRequest());  // depth 0 -> full cost
  ASSERT_TRUE(second.ok());
  auto third = manager.Submit(MakeRequest());   // depth 1 -> degraded
  ASSERT_TRUE(third.ok());
  auto fourth = manager.Submit(MakeRequest());  // depth 2 -> degraded
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(manager.degraded(), 2u);
  EXPECT_EQ(manager.rejected(), 0u) << "degradation must precede shedding";

  auto fifth = manager.Submit(MakeRequest());   // depth 3 = max_queue -> shed
  EXPECT_TRUE(fifth.status().IsResourceExhausted());
  EXPECT_EQ(manager.rejected(), 1u);
  EXPECT_GE(manager.RetryAfterSeconds(), 1);
  EXPECT_LE(manager.RetryAfterSeconds(), 60);

  manager.Drain();
  // Degraded jobs still complete as valid (possibly truncated) results.
  auto full = manager.Get(second.value());
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->degraded);
  auto capped = manager.Get(third.value());
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->state, JobState::kDone);
  EXPECT_TRUE(capped->degraded);
  EXPECT_FALSE(capped->formula.empty());
}

TEST_F(JobManagerTest, DegradedWorkCapsAreDeterministic) {
  // The same degraded caps produce byte-identical results on repeat runs —
  // the property that makes degraded replay safe across replicas.
  JobManager::Options options;
  options.workers = 1;
  options.max_queue = 8;
  JobManager manager(&registry_, &cache_, options);
  std::vector<std::string> formulas;
  for (int run = 0; run < 2; ++run) {
    JobRequest request = MakeRequest();
    request.limits.max_candidate_formulas = 256;  // what the gate would set
    request.degraded = true;
    auto id = manager.Submit(request);
    ASSERT_TRUE(id.ok());
    manager.Drain();
    auto snapshot = manager.Get(id.value());
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->state, JobState::kDone);
    EXPECT_TRUE(snapshot->degraded);
    formulas.push_back(snapshot->formula);
  }
  EXPECT_EQ(formulas[0], formulas[1]);
}

TEST_F(JobManagerTest, DeadlineProducesTruncatedDoneNotError) {
  // Stall inside the search (index.similar delay) so a 1ms deadline trips
  // mid-run; the job must land done+truncated, never failed.
  ASSERT_TRUE(failpoint::Arm(failpoint::kIndexSimilar, "delay:30ms").ok());
  JobManager manager(&registry_, &cache_, WorkerOptions(2, 8));
  JobRequest request = MakeRequest();
  request.deadline_ms = 1;
  auto id = manager.Submit(request);
  ASSERT_TRUE(id.ok());
  manager.Drain();
  auto snapshot = manager.Get(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_TRUE(snapshot->truncated);
  EXPECT_EQ(snapshot->budget_trip, "wall-clock");
}

TEST_F(JobManagerTest, FailpointErrorLandsInFailed) {
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, "error:chaos").ok());
  JobManager manager(&registry_, &cache_, WorkerOptions(2, 8));
  auto id = manager.Submit(MakeRequest());
  ASSERT_TRUE(id.ok());
  manager.Drain();
  auto snapshot = manager.Get(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, JobState::kFailed);
  EXPECT_NE(snapshot->error.find("chaos"), std::string::npos);
  EXPECT_EQ(manager.failed(), 1u);
}

TEST_F(JobManagerTest, CancelQueuedJob) {
  // Stall the single worker so the second job stays queued, cancel it, and
  // verify it never ran.
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, "delay:150ms").ok());
  JobManager manager(&registry_, &cache_, WorkerOptions(1, 4));
  auto running = manager.Submit(MakeRequest());
  ASSERT_TRUE(running.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto queued = manager.Submit(MakeRequest());
  ASSERT_TRUE(queued.ok());
  EXPECT_TRUE(manager.Cancel(queued.value()));
  manager.Drain();
  auto snapshot = manager.Get(queued.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, JobState::kCancelled);
  EXPECT_EQ(manager.cancelled(), 1u);
}

TEST_F(JobManagerTest, CancelRunningJobStopsViaBudget) {
  // The index.similar delay gives Cancel a window while the search runs.
  ASSERT_TRUE(failpoint::Arm(failpoint::kIndexSimilar, "delay:40ms").ok());
  JobManager manager(&registry_, &cache_, WorkerOptions(1, 4));
  auto id = manager.Submit(MakeRequest());
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(manager.Cancel(id.value()));
  manager.Drain();
  auto snapshot = manager.Get(id.value());
  ASSERT_TRUE(snapshot.ok());
  // Either the cancel landed mid-run (cancelled) or the job finished first
  // (done) — both are valid races; what must never happen is failed/hang.
  EXPECT_TRUE(snapshot->state == JobState::kCancelled ||
              snapshot->state == JobState::kDone)
      << JobStateName(snapshot->state);
}

TEST_F(JobManagerTest, TerminalJobRetentionEvictsOldest) {
  JobManager::Options retention = WorkerOptions(2, 8);
  retention.max_terminal = 2;
  JobManager manager(&registry_, &cache_, retention);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = manager.Submit(MakeRequest());
    ASSERT_TRUE(id.ok()) << id.status();
    manager.Drain();  // per-job, so terminal order matches submit order
    ids.push_back(id.value());
  }
  // Only the newest two terminal jobs are retained.
  EXPECT_FALSE(manager.Get(ids[0]).ok());
  EXPECT_FALSE(manager.Get(ids[1]).ok());
  EXPECT_EQ(manager.List().size(), 2u);
  auto third = manager.Get(ids[2]);
  ASSERT_TRUE(third.ok());
  // The sealed snapshot still serves the result after the job dropped its
  // table pins at the terminal transition.
  EXPECT_EQ(third->state, JobState::kDone);
  EXPECT_FALSE(third->formula.empty());
  EXPECT_EQ(manager.completed(), 4u);
}

TEST_F(JobManagerTest, ConcurrentIdenticalJobsAreByteIdentical) {
  // Acceptance gate: >= 8 concurrent jobs against the cached index produce
  // byte-identical formulas, equal to a direct single-threaded run.
  core::SearchOptions direct_options;
  direct_options.num_threads = 1;
  auto direct = core::DiscoverTranslation(dataset_.source, dataset_.target,
                                          dataset_.target_column,
                                          direct_options);
  ASSERT_TRUE(direct.ok()) << direct.status();
  const std::string expected =
      direct->formula().ToString(dataset_.source.schema());

  JobManager manager(&registry_, &cache_, WorkerOptions(8, 16));
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    JobRequest request = MakeRequest();
    request.options.num_threads = 2;
    auto id = manager.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  manager.Drain();
  for (uint64_t id : ids) {
    auto snapshot = manager.Get(id);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ(snapshot->state, JobState::kDone)
        << "job " << id << ": " << snapshot->error;
    EXPECT_EQ(snapshot->formula, expected) << "job " << id;
  }
  EXPECT_GT(cache_.stats().hits, 0u);
}

// -------------------------------------------------------------- routes ----

HttpRequest MakeHttpRequest(const std::string& method, const std::string& path,
                            const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

DiscoveryService::Options RouteOptions() {
  DiscoveryService::Options options;
  options.job_workers = 2;
  options.max_queue = 4;
  options.cache_bytes = 16 << 20;
  return options;
}

class ServiceRouteTest : public ::testing::Test {
 protected:
  ServiceRouteTest() : service_(RouteOptions()) {}
  void TearDown() override { failpoint::DisarmAll(); }

  // Polls GET /jobs/{id} until the state is terminal.
  Json WaitForJob(const std::string& id_text) {
    for (int i = 0; i < 2000; ++i) {
      HttpResponse response =
          service_.Handle(MakeHttpRequest("GET", "/jobs/" + id_text));
      auto body = Json::Parse(response.body);
      if (!body.ok()) break;
      const Json* state_field = body->Find("state");
      if (state_field == nullptr) break;
      std::string state = state_field->AsString("");
      if (state != "queued" && state != "running") return body.value();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Json();
  }

  DiscoveryService service_;
};

TEST_F(ServiceRouteTest, HealthzAndUnknownRoutes) {
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/healthz")).status, 200);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/healthz")).status, 405);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/nope")).status, 404);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/jobs/abc")).status, 400);
}

TEST_F(ServiceRouteTest, HealthzReportsDrainingOnceDrainBegins) {
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/v1/healthz")).status,
            200);
  service_.BeginDrain();
  HttpResponse health =
      service_.Handle(MakeHttpRequest("GET", "/v1/healthz"));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"draining\""), std::string::npos)
      << health.body;
  // Only health flips: data-plane endpoints keep answering during drain so
  // routers can poll in-flight jobs to completion.
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/v1/jobs")).status, 200);
  std::string metrics =
      service_.Handle(MakeHttpRequest("GET", "/v1/metrics")).body;
  EXPECT_NE(metrics.find("mcsm_service_draining 1"), std::string::npos);
}

TEST_F(ServiceRouteTest, ShedJobsCarryRetryAfter) {
  // Stall the workers so submissions pile up to the queue cap; service_
  // runs 2 workers with max_queue 4 (fixture options).
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, "delay:300ms").ok());
  Json table = Json::Object();
  table.Set("name", Json::Str("people"));
  table.Set("csv", Json::Str("first,last\nhenry,warner\nanna,smith\n"));
  ASSERT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/v1/tables", table.Dump()))
          .status,
      200);
  Json target = Json::Object();
  target.Set("name", Json::Str("logins"));
  target.Set("csv", Json::Str("login\nhwarner\nasmith\n"));
  ASSERT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/v1/tables", target.Dump()))
          .status,
      200);

  Json job = Json::Object();
  job.Set("source_table", Json::Str("people"));
  job.Set("target_table", Json::Str("logins"));
  job.Set("target_column", Json::Number(0));
  const std::string body = job.Dump();

  // Submit until the queue sheds; the 429 must carry Retry-After seconds.
  HttpResponse shed;
  for (int i = 0; i < 32 && shed.status != 429; ++i) {
    shed = service_.Handle(MakeHttpRequest("POST", "/v1/jobs", body));
  }
  ASSERT_EQ(shed.status, 429) << shed.body;
  bool has_retry_after = false;
  for (const auto& [name, value] : shed.headers) {
    if (name == "Retry-After") {
      has_retry_after = true;
      EXPECT_GE(std::atoi(value.c_str()), 1) << value;
      EXPECT_LE(std::atoi(value.c_str()), 60) << value;
    }
  }
  EXPECT_TRUE(has_retry_after);
  std::string metrics =
      service_.Handle(MakeHttpRequest("GET", "/v1/metrics")).body;
  EXPECT_NE(metrics.find("mcsm_jobs_shed_total"), std::string::npos);
  failpoint::DisarmAll();  // let the backlog finish at full speed
  service_.jobs().Drain();
}

TEST_F(ServiceRouteTest, FullTableAndJobFlow) {
  Json table = Json::Object();
  table.Set("name", Json::Str("people"));
  table.Set("csv", Json::Str("first,last\nhenry,warner\nanna,smith\n"
                             "bob,jones\ncarol,white\n"));
  HttpResponse posted =
      service_.Handle(MakeHttpRequest("POST", "/tables", table.Dump()));
  ASSERT_EQ(posted.status, 200) << posted.body;

  Json target = Json::Object();
  target.Set("name", Json::Str("logins"));
  target.Set("csv",
             Json::Str("login\nhwarner\nasmith\nbjones\ncwhite\n"));
  ASSERT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/tables", target.Dump()))
          .status,
      200);

  HttpResponse listed = service_.Handle(MakeHttpRequest("GET", "/tables"));
  auto tables = Json::Parse(listed.body);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->Find("tables")->size(), 2u);

  Json job = Json::Object();
  job.Set("source_table", Json::Str("people"));
  job.Set("target_table", Json::Str("logins"));
  job.Set("target_column", Json::Number(0));
  HttpResponse accepted =
      service_.Handle(MakeHttpRequest("POST", "/jobs", job.Dump()));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  auto accepted_body = Json::Parse(accepted.body);
  ASSERT_TRUE(accepted_body.ok());
  const Json* id = accepted_body->Find("id");
  ASSERT_NE(id, nullptr);

  Json done = WaitForJob(Json::Number(id->AsNumber(0)).Dump());
  ASSERT_TRUE(done.is_object());
  EXPECT_EQ(done.Find("state")->AsString(""), "done");
  EXPECT_EQ(done.Find("formula")->AsString(""), "first[1-1]last[1-n]");

  // Metrics text mentions the cache and the jobs counters.
  HttpResponse metrics = service_.Handle(MakeHttpRequest("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain");
  EXPECT_NE(metrics.body.find("mcsm_jobs_completed 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("mcsm_index_cache_misses"), std::string::npos);
}

TEST_F(ServiceRouteTest, BadRequestsAreMapped) {
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/tables", "notjson"))
                .status,
            400);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/tables", "[]")).status,
            400);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/jobs",
                                            R"({"source_table":"x"})"))
                .status,
            400);
  // Unregistered tables: 404.
  EXPECT_EQ(
      service_
          .Handle(MakeHttpRequest(
              "POST", "/jobs",
              R"({"source_table":"x","target_table":"y","target_column":0})"))
          .status,
      404);
  // Unknown job id: 404 on GET and DELETE.
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/jobs/999")).status, 404);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("DELETE", "/jobs/999")).status,
            404);
}

TEST_F(ServiceRouteTest, NumThreadsValidated) {
  // Validation happens before table lookup, so no tables are needed here.
  const char* negative =
      R"({"source_table":"x","target_table":"y","target_column":0,"num_threads":-4})";
  const char* fractional =
      R"({"source_table":"x","target_table":"y","target_column":0,"num_threads":1.5})";
  const char* huge =
      R"({"source_table":"x","target_table":"y","target_column":0,"num_threads":10000000000})";
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/jobs", negative)).status,
            400);
  EXPECT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/jobs", fractional)).status,
      400);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/jobs", huge)).status,
            400);
}

TEST_F(ServiceRouteTest, LargeNumThreadsIsClampedNotFatal) {
  Json table = Json::Object();
  table.Set("name", Json::Str("people"));
  table.Set("csv", Json::Str("first,last\nhenry,warner\nanna,smith\n"));
  ASSERT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/tables", table.Dump())).status,
      200);
  Json target = Json::Object();
  target.Set("name", Json::Str("logins"));
  target.Set("csv", Json::Str("login\nhwarner\nasmith\n"));
  ASSERT_EQ(
      service_.Handle(MakeHttpRequest("POST", "/tables", target.Dump()))
          .status,
      200);

  // 1e9 passes validation but must be clamped to hardware concurrency —
  // the job completes instead of killing the worker on thread exhaustion.
  Json job = Json::Object();
  job.Set("source_table", Json::Str("people"));
  job.Set("target_table", Json::Str("logins"));
  job.Set("target_column", Json::Number(0));
  job.Set("num_threads", Json::Number(1e9));
  HttpResponse accepted =
      service_.Handle(MakeHttpRequest("POST", "/jobs", job.Dump()));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  auto accepted_body = Json::Parse(accepted.body);
  ASSERT_TRUE(accepted_body.ok());
  Json done =
      WaitForJob(Json::Number(accepted_body->Find("id")->AsNumber(0)).Dump());
  ASSERT_TRUE(done.is_object());
  EXPECT_EQ(done.Find("state")->AsString(""), "done");
}

bool HasDeprecationHeader(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    if (name == "Deprecation") return value == "true";
  }
  return false;
}

TEST_F(ServiceRouteTest, V1RoutesAndDeprecatedAliases) {
  // /v1/ is the canonical surface; the unversioned paths answer identically
  // but flag themselves with a Deprecation header.
  HttpResponse v1 = service_.Handle(MakeHttpRequest("GET", "/v1/healthz"));
  EXPECT_EQ(v1.status, 200);
  EXPECT_FALSE(HasDeprecationHeader(v1));
  HttpResponse legacy = service_.Handle(MakeHttpRequest("GET", "/healthz"));
  EXPECT_EQ(legacy.status, 200);
  EXPECT_TRUE(HasDeprecationHeader(legacy));
  EXPECT_EQ(v1.body, legacy.body);

  // Every JSON response carries the wire-format version — success and error.
  auto ok_body = Json::Parse(v1.body);
  ASSERT_TRUE(ok_body.ok());
  EXPECT_EQ(ok_body->Find("schema_version")->AsNumber(0), 1);
  HttpResponse missing = service_.Handle(MakeHttpRequest("GET", "/v1/nope"));
  EXPECT_EQ(missing.status, 404);
  auto err_body = Json::Parse(missing.body);
  ASSERT_TRUE(err_body.ok());
  EXPECT_EQ(err_body->Find("schema_version")->AsNumber(0), 1);

  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/v1/metrics")).status,
            200);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/v1/tables")).status,
            200);
}

TEST_F(ServiceRouteTest, SearchKnobsValidatedAtIntake) {
  Json table = Json::Object();
  table.Set("name", Json::Str("people"));
  table.Set("csv", Json::Str("first,last\nhenry,warner\nanna,smith\n"));
  ASSERT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/tables",
                                            table.Dump())).status,
            200);
  Json target = Json::Object();
  target.Set("name", Json::Str("logins"));
  target.Set("csv", Json::Str("login\nhwarner\nasmith\n"));
  ASSERT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/tables",
                                            target.Dump())).status,
            200);

  // SearchOptions::Validate runs at Submit; bad knobs map to 400.
  Json job = Json::Object();
  job.Set("source_table", Json::Str("people"));
  job.Set("target_table", Json::Str("logins"));
  job.Set("target_column", Json::Number(0));
  job.Set("sample_fraction", Json::Number(1.5));
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/jobs", job.Dump()))
                .status,
            400);
  job.Set("sample_fraction", Json::Number(0));
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/jobs", job.Dump()))
                .status,
            400);
  job.Set("sample_fraction", Json::Number(0.5));
  job.Set("q", Json::Number(0));
  EXPECT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/jobs", job.Dump()))
                .status,
            400);
}

TEST_F(ServiceRouteTest, TracedJobServesTraceAndExplain) {
  Json table = Json::Object();
  table.Set("name", Json::Str("people"));
  table.Set("csv", Json::Str("first,last\nhenry,warner\nanna,smith\n"
                             "bob,jones\ncarol,white\n"));
  ASSERT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/tables",
                                            table.Dump())).status,
            200);
  Json target = Json::Object();
  target.Set("name", Json::Str("logins"));
  target.Set("csv", Json::Str("login\nhwarner\nasmith\nbjones\ncwhite\n"));
  ASSERT_EQ(service_.Handle(MakeHttpRequest("POST", "/v1/tables",
                                            target.Dump())).status,
            200);

  auto submit = [&](bool trace) -> std::string {
    Json job = Json::Object();
    job.Set("source_table", Json::Str("people"));
    job.Set("target_table", Json::Str("logins"));
    job.Set("target_column", Json::Number(0));
    if (trace) job.Set("trace", Json::Bool(true));
    HttpResponse accepted =
        service_.Handle(MakeHttpRequest("POST", "/v1/jobs", job.Dump()));
    EXPECT_EQ(accepted.status, 202) << accepted.body;
    auto body = Json::Parse(accepted.body);
    EXPECT_TRUE(body.ok());
    return Json::Number(body->Find("id")->AsNumber(0)).Dump();
  };

  const std::string traced_id = submit(true);
  const std::string untraced_id = submit(false);

  Json done = WaitForJob(traced_id);
  ASSERT_TRUE(done.is_object());
  EXPECT_EQ(done.Find("state")->AsString(""), "done");
  EXPECT_TRUE(done.Find("traced")->AsBool(false));
  // The terminal snapshot carries the rendered decision log.
  const Json* explain = done.Find("explain");
  ASSERT_NE(explain, nullptr);
  EXPECT_NE(explain->AsString("").find("discovery explain"),
            std::string::npos);

  HttpResponse trace = service_.Handle(
      MakeHttpRequest("GET", "/v1/jobs/" + traced_id + "/trace"));
  EXPECT_EQ(trace.status, 200) << trace.body;
  auto trace_body = Json::Parse(trace.body);
  ASSERT_TRUE(trace_body.ok());
  EXPECT_EQ(trace_body->Find("schema_version")->AsNumber(0), 1);
  const Json* events = trace_body->Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->size(), 0u);

  // An untraced job 404s on the trace endpoint; so does an unknown id.
  WaitForJob(untraced_id);
  EXPECT_EQ(service_
                .Handle(MakeHttpRequest("GET", "/v1/jobs/" + untraced_id +
                                                   "/trace"))
                .status,
            404);
  EXPECT_EQ(service_.Handle(MakeHttpRequest("GET", "/v1/jobs/999/trace"))
                .status,
            404);

  // Trace activity shows in /metrics.
  HttpResponse metrics =
      service_.Handle(MakeHttpRequest("GET", "/v1/metrics"));
  EXPECT_NE(metrics.body.find("mcsm_jobs_traced 1"), std::string::npos);
  EXPECT_EQ(metrics.body.find("mcsm_trace_events_total 0\n"),
            std::string::npos);
}

// ----------------------------------------------------------- end-to-end ----

// Minimal blocking HTTP client for the socket-level test.
std::string FetchOnce(int port, const std::string& raw_request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    ssize_t n = ::send(fd, raw_request.data() + sent,
                       raw_request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpServerTest, ServesOverRealSockets) {
  DiscoveryService service(RouteOptions());
  HttpServer::Options options;
  options.port = 0;  // ephemeral
  options.workers = 2;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  std::string health = FetchOnce(
      server.port(), "GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find(R"("status":"ok")"), std::string::npos) << health;
  EXPECT_NE(health.find(R"("schema_version":1)"), std::string::npos);

  // The deprecated unversioned alias serves the same body plus the header.
  std::string legacy = FetchOnce(
      server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(legacy.find("Deprecation: true\r\n"), std::string::npos)
      << legacy;
  EXPECT_NE(legacy.find(R"("status":"ok")"), std::string::npos);

  const std::string body =
      R"({"name":"t","csv":"a,b\nhenry,warner\n"})";
  std::string posted = FetchOnce(
      server.port(),
      "POST /tables HTTP/1.1\r\nHost: x\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(posted.find("HTTP/1.1 200 OK"), std::string::npos) << posted;
  EXPECT_NE(posted.find("\"rows\":1"), std::string::npos) << posted;

  std::string malformed = FetchOnce(server.port(), "BROKEN\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400"), std::string::npos) << malformed;

  // Parallel requests through the worker pool.
  std::vector<std::thread> clients;
  std::vector<std::string> responses(8);
  for (size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&responses, i, port = server.port()] {
      responses[i] =
          FetchOnce(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    });
  }
  for (auto& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  }

  server.Shutdown();
  // After shutdown the port refuses connections (empty response).
  EXPECT_EQ(FetchOnce(server.port(),
                      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            "");
}

TEST(HttpServerTest, AcceptFailpointDropsConnectionsButServerSurvives) {
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm(failpoint::kServiceAccept, "error@2").ok());
  HttpServer::Options options;
  options.port = 0;
  options.workers = 1;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = R"({"ok":true})";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // Sequential fetches: every 2nd accept is dropped on the floor (client
  // sees an empty response), the others are served; the server never dies.
  int served = 0;
  int dropped = 0;
  for (int i = 0; i < 6; ++i) {
    std::string response = FetchOnce(
        server.port(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    if (response.empty()) {
      ++dropped;
    } else {
      EXPECT_NE(response.find("200 OK"), std::string::npos);
      ++served;
    }
  }
  EXPECT_EQ(served, 3);
  EXPECT_EQ(dropped, 3);

  failpoint::DisarmAll();
  EXPECT_NE(FetchOnce(server.port(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("200 OK"),
            std::string::npos);
  server.Shutdown();
}

TEST(HttpServerTest, ConcurrentShutdownIsSafe) {
  HttpServer::Options options;
  options.port = 0;
  options.workers = 2;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  // Racing Shutdown callers (e.g. signal path vs. destructor) must
  // serialize — exactly one performs the joins, the rest wait it out.
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&server] { server.Shutdown(); });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(FetchOnce(server.port(),
                      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            "");
  server.Shutdown();  // still idempotent after the race
}

}  // namespace
}  // namespace mcsm::service
