#include "text/simd.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/column_index.h"
#include "relational/table.h"

namespace mcsm::text::simd {
namespace {

/// Every tier available on this machine, scalar first. On a CPU (or build)
/// without vector support this collapses to {kScalar} and the differential
/// tests degenerate to self-comparison — still a valid smoke test.
std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (DetectedLevel() >= Level::kSSE42) levels.push_back(Level::kSSE42);
  if (DetectedLevel() >= Level::kAVX2) levels.push_back(Level::kAVX2);
  return levels;
}

/// Restores the detected dispatch tier when a test scope ends, so a failing
/// differential test cannot leave the process pinned to the scalar path.
struct LevelGuard {
  ~LevelGuard() { SetActiveLevelForTesting(DetectedLevel()); }
};

TEST(SimdDispatchTest, LevelNamesAndClamping) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kSSE42), "sse42");
  EXPECT_STREQ(LevelName(Level::kAVX2), "avx2");
  LevelGuard guard;
  SetActiveLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  // Requests above the detected tier clamp instead of crashing.
  SetActiveLevelForTesting(Level::kAVX2);
  EXPECT_LE(ActiveLevel(), DetectedLevel());
}

TEST(SimdKernelTest, LookupGrams2MatchesScalarAtEveryLevel) {
  // A 65536-entry direct-address table with recognizable values.
  std::vector<uint32_t> table(65536);
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<uint32_t>(i * 2654435761u);
  }
  Rng rng(11);
  LevelGuard guard;
  for (size_t len : {2u, 3u, 8u, 9u, 15u, 16u, 17u, 64u, 251u}) {
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const size_t windows = s.size() - 1;
    SetActiveLevelForTesting(Level::kScalar);
    std::vector<uint32_t> expected(windows);
    LookupGrams2(s, table.data(), expected.data());
    for (Level level : AvailableLevels()) {
      SetActiveLevelForTesting(level);
      std::vector<uint32_t> got(windows, 0xDEADBEEFu);
      LookupGrams2(s, table.data(), got.data());
      EXPECT_EQ(got, expected) << "len=" << len
                               << " level=" << LevelName(level);
    }
  }
}

TEST(SimdKernelTest, HashBatch32MatchesScalarAtEveryLevel) {
  Rng rng(13);
  LevelGuard guard;
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    std::vector<uint32_t> packed(n);
    for (auto& p : packed) p = static_cast<uint32_t>(rng.Next64());
    for (uint32_t shift : {1u, 16u, 28u, 31u}) {
      SetActiveLevelForTesting(Level::kScalar);
      std::vector<uint32_t> expected(n);
      HashBatch32(packed.data(), n, shift, expected.data());
      for (Level level : AvailableLevels()) {
        SetActiveLevelForTesting(level);
        std::vector<uint32_t> got(n, 0xDEADBEEFu);
        HashBatch32(packed.data(), n, shift, got.data());
        EXPECT_EQ(got, expected) << "n=" << n << " shift=" << shift
                                 << " level=" << LevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, DeltaDecodeMatchesScalarAtEveryLevel) {
  Rng rng(17);
  LevelGuard guard;
  for (uint32_t width : {1u, 2u, 4u}) {
    for (size_t count : {1u, 2u, 4u, 5u, 8u, 127u, 128u}) {
      std::vector<uint8_t> bytes((count - 1) * width);
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      const uint32_t base = static_cast<uint32_t>(rng.UniformInt(0, 1000));
      SetActiveLevelForTesting(Level::kScalar);
      std::vector<uint32_t> expected(count);
      DeltaDecode(base, bytes.data(), count, width, expected.data());
      for (Level level : AvailableLevels()) {
        SetActiveLevelForTesting(level);
        std::vector<uint32_t> got(count, 0xDEADBEEFu);
        DeltaDecode(base, bytes.data(), count, width, got.data());
        EXPECT_EQ(got, expected) << "width=" << width << " count=" << count
                                 << " level=" << LevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, WidenU32MatchesScalarAtEveryLevel) {
  Rng rng(19);
  LevelGuard guard;
  for (uint32_t width : {1u, 2u, 4u}) {
    for (size_t count : {1u, 3u, 4u, 8u, 128u}) {
      std::vector<uint8_t> bytes(count * width);
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      SetActiveLevelForTesting(Level::kScalar);
      std::vector<uint32_t> expected(count);
      WidenU32(bytes.data(), count, width, expected.data());
      for (Level level : AvailableLevels()) {
        SetActiveLevelForTesting(level);
        std::vector<uint32_t> got(count, 0xDEADBEEFu);
        WidenU32(bytes.data(), count, width, got.data());
        EXPECT_EQ(got, expected) << "width=" << width << " count=" << count
                                 << " level=" << LevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, TfContributionsBitIdenticalAtEveryLevel) {
  Rng rng(23);
  LevelGuard guard;
  for (size_t count : {1u, 3u, 4u, 5u, 8u, 128u}) {
    std::vector<uint32_t> tf(count);
    for (auto& t : tf) t = static_cast<uint32_t>(rng.UniformInt(1, 1000));
    const double key_weight = rng.UniformDouble() * 17.0;
    const double idf = rng.UniformDouble() * 11.0;
    SetActiveLevelForTesting(Level::kScalar);
    std::vector<double> expected(count);
    TfContributions(key_weight, idf, tf.data(), count, expected.data());
    for (Level level : AvailableLevels()) {
      SetActiveLevelForTesting(level);
      std::vector<double> got(count, -1.0);
      TfContributions(key_weight, idf, tf.data(), count, got.data());
      for (size_t i = 0; i < count; ++i) {
        // Bit-for-bit, not almost-equal: the determinism contract.
        EXPECT_EQ(got[i], expected[i])
            << "count=" << count << " i=" << i
            << " level=" << LevelName(level);
      }
    }
  }
}

// --- End-to-end differentials over ColumnIndex -----------------------------

relational::Table SyntheticTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  relational::Table t = relational::Table::WithTextColumns({"name"});
  const std::vector<std::string> first = {"alice",  "bob",   "carol",
                                          "dave",   "erin",  "frank",
                                          "grace",  "heidi", "ivan"};
  const std::vector<std::string> last = {"smith", "jones",  "brown",
                                         "davis", "miller", "wilson"};
  for (size_t i = 0; i < rows; ++i) {
    std::string v = first[rng.Uniform(first.size())];
    v += " ";
    v += last[rng.Uniform(last.size())];
    if (rng.UniformInt(0, 4) == 0) v += std::to_string(rng.UniformInt(0, 99));
    EXPECT_TRUE(t.AppendTextRow({v}).ok());
  }
  return t;
}

relational::ColumnIndex::Options IndexOptions(bool legacy) {
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  o.use_legacy_postings = legacy;
  return o;
}

void ExpectSameScoredRows(
    const std::vector<relational::ColumnIndex::ScoredRow>& a,
    const std::vector<relational::ColumnIndex::ScoredRow>& b,
    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row) << context << " at " << i;
    // Bit-identical doubles, not approximate: same expression, same order.
    EXPECT_EQ(a[i].score, b[i].score) << context << " at " << i;
  }
}

TEST(SimdDifferentialTest, CompressedMatchesLegacyByteForByte) {
  relational::Table t = SyntheticTable(2000, 31);
  relational::ColumnIndex compressed(t, 0, IndexOptions(false));
  relational::ColumnIndex legacy(t, 0, IndexOptions(true));

  const std::vector<std::string> keys = {"alice smith", "frank", "smith99",
                                         "zzz", "bo", "erin wilson7"};
  for (const std::string& key : keys) {
    ExpectSameScoredRows(compressed.SimilarRows(key, 0.0, 50),
                         legacy.SimilarRows(key, 0.0, 50),
                         "SimilarRows " + key);
    ExpectSameScoredRows(compressed.SimilarRowsByCount(key, 0.0, 50),
                         legacy.SimilarRowsByCount(key, 0.0, 50),
                         "SimilarRowsByCount " + key);
  }
  for (const char* like : {"%smith%", "alice%", "%son", "%zz%", "gr%ce"}) {
    auto pattern = relational::SearchPattern::FromLikeString(like);
    EXPECT_EQ(compressed.RowsMatchingPattern(pattern),
              legacy.RowsMatchingPattern(pattern))
        << like;
  }
  for (const std::string& key : keys) {
    EXPECT_EQ(compressed.RowsWithAnyQGram(key), legacy.RowsWithAnyQGram(key))
        << key;
    EXPECT_EQ(compressed.TotalQGramHits(key), legacy.TotalQGramHits(key))
        << key;
  }
  EXPECT_EQ(
      compressed.DecodedPostings("it").size(),
      legacy.DecodedPostings("it").size());
}

TEST(SimdDifferentialTest, ScalarAndVectorRetrievalBitIdentical) {
  relational::Table t = SyntheticTable(1500, 37);
  relational::ColumnIndex idx(t, 0, IndexOptions(false));

  LevelGuard guard;
  SetActiveLevelForTesting(Level::kScalar);
  const auto expected_sim = idx.SimilarRows("carol jones", 0.0, 100);
  const auto expected_cnt = idx.SimilarRowsByCount("carol jones", 0.0, 100);
  auto pattern = relational::SearchPattern::FromLikeString("%jones%");
  const auto expected_rows = idx.RowsMatchingPattern(pattern);

  for (Level level : AvailableLevels()) {
    SetActiveLevelForTesting(level);
    ExpectSameScoredRows(idx.SimilarRows("carol jones", 0.0, 100),
                         expected_sim,
                         std::string("SimilarRows@") + LevelName(level));
    ExpectSameScoredRows(
        idx.SimilarRowsByCount("carol jones", 0.0, 100), expected_cnt,
        std::string("SimilarRowsByCount@") + LevelName(level));
    EXPECT_EQ(idx.RowsMatchingPattern(pattern), expected_rows)
        << LevelName(level);
  }
}

TEST(SimdDifferentialTest, FrozenDictionaryMatchesHashMapLookups) {
  // A dictionary with a foreign-length gram stays on the hash-map path;
  // a uniform one freezes. Both must answer identically.
  relational::Table t = SyntheticTable(300, 41);
  relational::ColumnIndex idx(t, 0, IndexOptions(false));
  const text::QGramDictionary& dict = idx.tfidf().dictionary();
  ASSERT_TRUE(dict.frozen());
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    std::string gram;
    gram.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    gram.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    // The frozen table and a linear scan over the interned grams must agree.
    const uint32_t id = dict.Find(gram);
    uint32_t expected = text::QGramDictionary::kNoGram;
    for (uint32_t i = 0; i < dict.size(); ++i) {
      if (dict.gram(i) == gram) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(id, expected) << gram;
  }
  // Wrong-length probes on a frozen dictionary are definitively unknown.
  EXPECT_EQ(dict.Find("abc"), text::QGramDictionary::kNoGram);
  EXPECT_EQ(dict.Find("a"), text::QGramDictionary::kNoGram);
}

}  // namespace
}  // namespace mcsm::text::simd
