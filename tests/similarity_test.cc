#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::text {
namespace {

TEST(SimilarityTest, NormalizedEditSimilarityRange) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abcd", "abcx"), 0.75);
}

TEST(SimilarityTest, TokenizeSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("j. smith, jr"),
            (std::vector<std::string>{"j", "smith", "jr"}));
  EXPECT_TRUE(Tokenize("...").empty());
  EXPECT_EQ(Tokenize("word"), (std::vector<std::string>{"word"}));
}

TEST(SimilarityTest, MongeElkanMatchesReorderedTokens) {
  // The field-level behaviour that motivated Monge-Elkan: reordered name
  // parts still score high.
  double reordered = MongeElkanSymmetric("robert kerry", "kerry, robert");
  EXPECT_GT(reordered, 0.95);
  double unrelated = MongeElkanSymmetric("robert kerry", "alice zzz");
  EXPECT_LT(unrelated, 0.5);
}

TEST(SimilarityTest, MongeElkanAsymmetry) {
  // Every token of "smith" matches into "john smith" perfectly; the reverse
  // direction pays for the unmatched "john".
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("smith", "john smith"), 1.0);
  EXPECT_LT(MongeElkanSimilarity("john smith", "smith"), 1.0);
}

TEST(SimilarityTest, MongeElkanEmptyInputs) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("abc", ""), 0.0);
}

TEST(SimilarityTest, JaccardCases) {
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("abc", "abc", 2), 1.0);
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("abc", "xyz", 2), 0.0);
  // "abcd" grams {ab,bc,cd}, "abce" grams {ab,bc,ce}: 2 shared of 4 total.
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("abcd", "abce", 2), 0.5);
  EXPECT_DOUBLE_EQ(JaccardQGramSimilarity("", "", 2), 1.0);
}

TEST(SimilarityTest, OverlapCoefficientCases) {
  // "ab" ({ab}) fully inside "abcd" ({ab,bc,cd}).
  EXPECT_DOUBLE_EQ(OverlapQGramCoefficient("ab", "abcd", 2), 1.0);
  EXPECT_DOUBLE_EQ(OverlapQGramCoefficient("ab", "xy", 2), 0.0);
  EXPECT_DOUBLE_EQ(OverlapQGramCoefficient("a", "abc", 2), 0.0);  // no grams
}

class SimilarityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityProperty, AllMeasuresBoundedAndReflexive) {
  Rng rng(GetParam() * 271);
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(12), "abc ");
    std::string b = rng.RandomString(rng.Uniform(12), "abc ");
    for (double v : {NormalizedEditSimilarity(a, b), MongeElkanSymmetric(a, b),
                     JaccardQGramSimilarity(a, b, 2),
                     OverlapQGramCoefficient(a, b, 2)}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
    EXPECT_DOUBLE_EQ(NormalizedEditSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(JaccardQGramSimilarity(a, a, 2), 1.0);
    EXPECT_DOUBLE_EQ(MongeElkanSymmetric(a, a), 1.0);
    // Symmetric variants are symmetric.
    EXPECT_DOUBLE_EQ(MongeElkanSymmetric(a, b), MongeElkanSymmetric(b, a));
    EXPECT_DOUBLE_EQ(JaccardQGramSimilarity(a, b, 2),
                     JaccardQGramSimilarity(b, a, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mcsm::text
