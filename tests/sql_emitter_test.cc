#include "core/sql_emitter.h"

#include <gtest/gtest.h>

#include "core/search.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace mcsm::core {
namespace {

using relational::Schema;
using relational::Table;

Schema NameSchema() {
  return Table::WithTextColumns({"first", "middle", "last"}).schema();
}

TEST(SqlEmitterTest, PaperSection41Query) {
  TranslationFormula f({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  SqlEmitter::Options options;
  options.source_table = "t1";
  options.output_column = "login";
  auto sql = SqlEmitter::ToSql(f, NameSchema(), options);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "select substring(first from 1 for 1) || last as login from t1 "
            "where first is not null and "
            "char_length(substring(first from 1 for 1)) = 1 and "
            "last is not null and char_length(last) >= 1");
}

TEST(SqlEmitterTest, MidStringToEndSpan) {
  TranslationFormula f({Region::SpanToEnd(2, 3)});
  auto sql = SqlEmitter::ToSql(f, NameSchema(), {});
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("substring(last from 3)"), std::string::npos);
  EXPECT_NE(sql->find("char_length(last) >= 3"), std::string::npos);
}

TEST(SqlEmitterTest, LiteralsQuoted) {
  TranslationFormula f({Region::SpanToEnd(2, 1), Region::Literal(", "),
                        Region::SpanToEnd(0, 1)});
  auto sql = SqlEmitter::ToSql(f, NameSchema(), {});
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("|| ', ' ||"), std::string::npos);
}

TEST(SqlEmitterTest, LiteralQuoteEscaping) {
  TranslationFormula f({Region::Literal("o'clock"), Region::SpanToEnd(0, 1)});
  auto sql = SqlEmitter::ToSql(f, NameSchema(), {});
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("'o''clock'"), std::string::npos);
}

TEST(SqlEmitterTest, IncompleteFormulaRejected) {
  TranslationFormula f({Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_TRUE(SqlEmitter::ToSql(f, NameSchema(), {}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SqlEmitter::ToSql(TranslationFormula{}, NameSchema(), {})
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlEmitterTest, ColumnBeyondSchemaRejected) {
  TranslationFormula f({Region::SpanToEnd(9, 1)});
  EXPECT_TRUE(SqlEmitter::ToSql(f, NameSchema(), {}).status().IsOutOfRange());
}

// Integration invariant: executing the emitted SQL in the embedded engine
// produces exactly the values Apply() produces for the covered rows.
TEST(SqlEmitterTest, EmittedSqlAgreesWithApply) {
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  ASSERT_TRUE(t.AppendTextRow({"robert", "h", "kerry"}).ok());
  ASSERT_TRUE(t.AppendTextRow({"kyle", "s", "norman"}).ok());
  ASSERT_TRUE(t.AppendRow({relational::Value(""), relational::Value("a"),
                           relational::Value("case")}).ok());  // empty first
  ASSERT_TRUE(t.AppendRow({relational::Value::MakeNull(),
                           relational::Value("b"),
                           relational::Value("galt")}).ok());  // NULL first

  TranslationFormula f({Region::Span(0, 1, 1), Region::SpanToEnd(2, 1)});
  SqlEmitter::Options options;
  options.output_column = "login";
  auto sql = SqlEmitter::ToSql(f, t.schema(), options);
  ASSERT_TRUE(sql.ok());

  relational::Database db;
  ASSERT_TRUE(db.CreateTable("t1", t).ok());
  sql::Engine engine(&db);
  auto rs = engine.Execute(*sql);
  ASSERT_TRUE(rs.ok()) << rs.status();

  std::vector<std::string> via_apply;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    auto v = f.Apply(t, row);
    if (v.has_value()) via_apply.push_back(*v);
  }
  std::vector<std::string> via_sql;
  for (const auto& row : rs->rows) via_sql.push_back(row[0].text());
  EXPECT_EQ(via_sql, via_apply);
  EXPECT_EQ(via_sql.size(), 2u);  // empty and NULL first rows excluded
}

}  // namespace
}  // namespace mcsm::core
