#include <gtest/gtest.h>

#include "common/rng.h"

#include "relational/database.h"
#include "sql/engine.h"
#include "sql/evaluator.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace mcsm::sql {
namespace {

using relational::Value;

TEST(LexerTest, TokenizesKeywordsIdentifiersAndSymbols) {
  auto tokens = Tokenize("SELECT first FROM t1 WHERE x <> 3.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "first");
  EXPECT_TRUE((*tokens)[6].IsSymbol("<>"));
  EXPECT_EQ((*tokens)[7].type, TokenType::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[7].real, 3.5);
}

TEST(LexerTest, StringLiteralsWithQuoteEscape) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, NormalizesNotEquals) {
  auto tokens = Tokenize("a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("select -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_TRUE(Parse("TRUNCATE t").status().IsParseError());
  EXPECT_TRUE(Parse("select from").status().IsParseError());
  EXPECT_TRUE(Parse("select 1 extra garbage ,").status().IsParseError());
  EXPECT_TRUE(Parse("update t").status().IsParseError());
  EXPECT_TRUE(Parse("delete t").status().IsParseError());
  EXPECT_TRUE(Parse("drop t").status().IsParseError());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 and not 0 > 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ExprToString(**e), "(((1 + (2 * 3)) = 7) and not (0 > 1))");
}

TEST(ParserTest, SubstringBothSyntaxes) {
  auto a = ParseExpression("substring(x from 1 for 2)");
  ASSERT_TRUE(a.ok());
  auto b = ParseExpression("substring(x, 1, 2)");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ExprToString(**a), ExprToString(**b));
}

// Fixture with a small database for evaluation tests.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    Exec("create table people (first text, last text, age integer)");
    Exec("insert into people values ('robert', 'kerry', 30), "
         "('kyle', 'norman', 25), ('norma', 'wiseman', 41), "
         "('amy', null, 19)");
  }

  ResultSet Exec(const std::string& sql) {
    auto result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  Value Scalar(const std::string& sql) {
    auto rs = Exec(sql);
    auto v = rs.ScalarValue();
    EXPECT_TRUE(v.ok()) << sql;
    return v.ok() ? std::move(v).value() : Value();
  }

  relational::Database db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, SelectStar) {
  auto rs = Exec("select * from people");
  EXPECT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"first", "last", "age"}));
}

TEST_F(EngineTest, WhereFilters) {
  auto rs = Exec("select first from people where age > 24 and age < 40");
  ASSERT_EQ(rs.num_rows(), 2u);
}

TEST_F(EngineTest, ConcatenationOperator) {
  auto v = Scalar("select first || last from people where first = 'robert'");
  EXPECT_EQ(v.text(), "robertkerry");
}

TEST_F(EngineTest, SubstringSemantics) {
  EXPECT_EQ(Scalar("select substring('abcdef' from 2 for 3)").text(), "bcd");
  EXPECT_EQ(Scalar("select substring('abcdef' from 4)").text(), "def");
  // SQL-standard clamping: from 0 for 2 yields first char only.
  EXPECT_EQ(Scalar("select substring('abcdef' from 0 for 2)").text(), "a");
  EXPECT_EQ(Scalar("select substring('abc' from 10 for 2)").text(), "");
  EXPECT_EQ(Scalar("select substring('abc' from -2)").text(), "abc");
}

TEST_F(EngineTest, SubstringNegativeLengthErrors) {
  auto result = engine_->Execute("select substring('abc' from 1 for -1)");
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, CharLengthAndCase) {
  EXPECT_EQ(Scalar("select char_length('abcd')").integer(), 4);
  EXPECT_EQ(Scalar("select upper('ab')").text(), "AB");
  EXPECT_EQ(Scalar("select lower('AB')").text(), "ab");
}

TEST_F(EngineTest, PositionFunction) {
  EXPECT_EQ(Scalar("select position('an' in 'banana')").integer(), 2);
  EXPECT_EQ(Scalar("select position('zz' in 'banana')").integer(), 0);
}

TEST_F(EngineTest, LikePredicate) {
  auto rs = Exec("select first from people where last like '%man'");
  EXPECT_EQ(rs.num_rows(), 2u);  // norman, wiseman
  rs = Exec("select first from people where last not like '%man'");
  EXPECT_EQ(rs.num_rows(), 1u);  // kerry (NULL last is neither)
}

TEST_F(EngineTest, NullSemantics) {
  // NULL comparisons are unknown -> filtered out.
  EXPECT_EQ(Exec("select * from people where last = last").num_rows(), 3u);
  EXPECT_EQ(Exec("select * from people where last is null").num_rows(), 1u);
  EXPECT_EQ(Exec("select * from people where last is not null").num_rows(), 3u);
  // NULL propagates through concatenation.
  auto rs = Exec("select first || last from people where first = 'amy'");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(EngineTest, ThreeValuedLogic) {
  // NULL or TRUE = TRUE; NULL and TRUE = NULL (row dropped).
  EXPECT_EQ(
      Exec("select * from people where last = 'x' or first = 'amy'").num_rows(),
      1u);
  EXPECT_EQ(
      Exec("select * from people where last like '%' and first = 'amy'")
          .num_rows(),
      0u);  // NULL like '%' is NULL, NULL and TRUE -> NULL
}

TEST_F(EngineTest, Aggregates) {
  EXPECT_EQ(Scalar("select count(*) from people").integer(), 4);
  EXPECT_EQ(Scalar("select count(last) from people").integer(), 3);
  EXPECT_EQ(Scalar("select count(distinct substring(first from 1 for 1)) "
                   "from people")
                .integer(),
            4);  // r, k, n, a
  EXPECT_EQ(Scalar("select sum(age) from people").integer(), 115);
  EXPECT_EQ(Scalar("select min(age) from people").integer(), 19);
  EXPECT_EQ(Scalar("select max(first) from people").text(), "robert");
  EXPECT_DOUBLE_EQ(Scalar("select avg(age) from people").real(), 115.0 / 4);
  EXPECT_EQ(Scalar("select count(*) * 2 from people").integer(), 8);
}

TEST_F(EngineTest, MixedAggregateAndScalarRejected) {
  EXPECT_FALSE(engine_->Execute("select first, count(*) from people").ok());
}

TEST_F(EngineTest, OrderByAndLimit) {
  auto rs = Exec("select first from people order by age desc limit 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0].text(), "norma");
  EXPECT_EQ(rs.rows[1][0].text(), "robert");
  rs = Exec("select first from people order by first");
  EXPECT_EQ(rs.rows[0][0].text(), "amy");
}

TEST_F(EngineTest, OrderByExpression) {
  auto rs = Exec("select first from people where last is not null "
                 "order by char_length(last), first");
  EXPECT_EQ(rs.rows[0][0].text(), "robert");  // kerry (5)
}

TEST_F(EngineTest, Aliases) {
  auto rs = Exec("select first as f, age a from people limit 1");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"f", "a"}));
}

TEST_F(EngineTest, TableLessSelect) {
  EXPECT_EQ(Scalar("select 1 + 2").integer(), 3);
  EXPECT_EQ(Scalar("select 'a' || 'b'").text(), "ab");
}

TEST_F(EngineTest, UnknownColumnAndTableErrors) {
  EXPECT_TRUE(engine_->Execute("select nope from people").status().IsNotFound());
  EXPECT_TRUE(engine_->Execute("select * from ghosts").status().IsNotFound());
}

TEST_F(EngineTest, DivisionByZero) {
  EXPECT_FALSE(engine_->Execute("select 1 / 0").ok());
}

TEST_F(EngineTest, PaperTranslationQuery) {
  // The Section 4.1 output query shape runs end to end.
  auto rs = Exec(
      "select substring(first from 1 for 1) || last as login from people "
      "where first is not null and "
      "char_length(substring(first from 1 for 1)) = 1 and "
      "last is not null and char_length(last) >= 1");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.columns[0], "login");
  EXPECT_EQ(rs.rows[0][0].text(), "rkerry");
  EXPECT_EQ(rs.rows[1][0].text(), "knorman");
  EXPECT_EQ(rs.rows[2][0].text(), "nwiseman");
}

TEST_F(EngineTest, ResultSetToStringRenders) {
  auto rs = Exec("select first from people limit 1");
  std::string rendered = rs.ToString();
  EXPECT_NE(rendered.find("first"), std::string::npos);
  EXPECT_NE(rendered.find("robert"), std::string::npos);
}

TEST_F(EngineTest, GroupByCountsPerKey) {
  auto rs = Exec(
      "select substring(first from 1 for 1) as initial, count(*) as n "
      "from people group by substring(first from 1 for 1) "
      "order by initial");
  ASSERT_EQ(rs.num_rows(), 4u);  // a, k, n, r
  EXPECT_EQ(rs.rows[0][0].text(), "a");
  EXPECT_EQ(rs.rows[0][1].integer(), 1);
}

TEST_F(EngineTest, GroupByWithHaving) {
  Exec("insert into people values ('rachel', 'ross', 28)");
  auto rs = Exec(
      "select substring(first from 1 for 1) as initial, count(*) as n "
      "from people group by substring(first from 1 for 1) "
      "having count(*) > 1 order by initial");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].text(), "r");  // robert + rachel
  EXPECT_EQ(rs.rows[0][1].integer(), 2);
}

TEST_F(EngineTest, GroupByAggregatesPerGroup) {
  auto rs = Exec("select char_length(first) as len, max(age) from people "
                 "group by char_length(first) order by len");
  // lengths: 3 (amy), 4 (kyle), 5 (norma), 6 (robert)
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][1].integer(), 19);
  EXPECT_EQ(rs.rows[3][1].integer(), 30);
}

TEST_F(EngineTest, SelectDistinct) {
  Exec("insert into people values ('robert', 'doe', 50)");
  auto rs = Exec("select distinct first from people order by first");
  EXPECT_EQ(rs.num_rows(), 4u);  // robert deduped
}

TEST_F(EngineTest, OrderByAggregateUnderGrouping) {
  auto rs = Exec(
      "select substring(first from 1 for 1) as initial from people "
      "group by substring(first from 1 for 1) order by count(*) desc, initial");
  ASSERT_EQ(rs.num_rows(), 4u);
}

TEST_F(EngineTest, UpdateRewritesMatchingRows) {
  Exec("update people set age = age + 1 where first = 'amy'");
  EXPECT_EQ(Scalar("select age from people where first = 'amy'").integer(),
            20);
  // Unconditional update touches every row.
  Exec("update people set last = upper(first)");
  EXPECT_EQ(Scalar("select last from people where first = 'amy'").text(),
            "AMY");
}

TEST_F(EngineTest, UpdateUsesPreUpdateValues) {
  Exec("create table sw (a text, b text)");
  Exec("insert into sw values ('x', 'y')");
  Exec("update sw set a = b, b = a");  // swap, not clobber
  auto rs = Exec("select a, b from sw");
  EXPECT_EQ(rs.rows[0][0].text(), "y");
  EXPECT_EQ(rs.rows[0][1].text(), "x");
}

TEST_F(EngineTest, UpdateErrors) {
  EXPECT_FALSE(engine_->Execute("update people set nope = 1").ok());
  EXPECT_FALSE(engine_->Execute("update people set age = 'text'").ok());
}

TEST_F(EngineTest, DeleteRemovesMatchingRows) {
  Exec("delete from people where age < 26");
  EXPECT_EQ(Scalar("select count(*) from people").integer(), 2);
  Exec("delete from people");
  EXPECT_EQ(Scalar("select count(*) from people").integer(), 0);
}

TEST_F(EngineTest, DropTable) {
  Exec("drop table people");
  EXPECT_TRUE(engine_->Execute("select * from people").status().IsNotFound());
  EXPECT_TRUE(engine_->Execute("drop table people").status().IsNotFound());
}

TEST_F(EngineTest, ReplaceAndConcatFunctions) {
  EXPECT_EQ(Scalar("select replace('2005/05/29', '/', '-')").text(),
            "2005-05-29");
  EXPECT_EQ(Scalar("select concat('a', null, 'b')").text(), "ab");
  EXPECT_EQ(Scalar("select abs(-4)").integer(), 4);
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // Robustness: arbitrary token sequences must produce a Status, never a
  // crash or hang.
  mcsm::Rng rng(2024);
  const std::vector<std::string> vocab = {
      "select", "from",  "where", "and",  "or",   "not",   "like", "(",
      ")",      ",",     "*",     "||",   "=",    "<>",    "<",    ">",
      "substring", "for", "count", "distinct", "order", "by",  "limit",
      "'x'",    "1",     "2.5",   "t1",   "first", "null", "is",  ";"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    size_t len = rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      sql += vocab[rng.Uniform(vocab.size())];
      sql += " ";
    }
    auto result = Parse(sql);
    (void)result;  // ok or ParseError are both fine; crashing is not
  }
}

TEST(EngineFuzzTest, RandomQueriesAgainstTableNeverCrash) {
  relational::Database db;
  Engine engine(&db);
  ASSERT_TRUE(engine.Execute("create table t (a text, b integer)").ok());
  ASSERT_TRUE(engine.Execute("insert into t values ('x', 1), (null, 2)").ok());
  mcsm::Rng rng(4048);
  const std::vector<std::string> vocab = {
      "select", "a",  "b",  "from", "t", "where", "=", "'x'", "1", "||",
      "substring", "(", ")", "for", "count", "*", ",", "is", "null",
      "char_length", "like", "'%x%'", "order", "by", "limit", "2"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql = "select ";
    size_t len = rng.Uniform(10);
    for (size_t i = 0; i < len; ++i) {
      sql += vocab[rng.Uniform(vocab.size())];
      sql += " ";
    }
    auto result = engine.Execute(sql);
    (void)result;
  }
}

}  // namespace
}  // namespace mcsm::sql
