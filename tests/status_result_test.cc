// Error-path coverage for Status/Result: propagation through Result<T>
// chains (MCSM_ASSIGN_OR_RETURN / MCSM_RETURN_IF_ERROR), Result constructed
// from a non-OK status, and the abort behavior of unchecked access now that
// value() enforces the ValueOrDie discipline.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace mcsm {
namespace {

Result<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("not positive");
  return raw;
}

Result<int> Doubled(int raw) {
  MCSM_ASSIGN_OR_RETURN(int value, ParsePositive(raw));
  return value * 2;
}

Result<std::string> Rendered(int raw) {
  MCSM_ASSIGN_OR_RETURN(int doubled, Doubled(raw));
  return std::to_string(doubled);
}

Status Validate(int raw) {
  MCSM_RETURN_IF_ERROR(ParsePositive(raw).status());
  return Status::OK();
}

TEST(ResultChainTest, ValuePropagatesThroughChain) {
  Result<std::string> r = Rendered(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "42");
}

TEST(ResultChainTest, ErrorShortCircuitsChainAndKeepsCodeAndMessage) {
  Result<std::string> r = Rendered(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.status().message(), "not positive");
}

TEST(ResultChainTest, ReturnIfErrorPropagatesAndPassesOk) {
  EXPECT_TRUE(Validate(5).ok());
  Status st = Validate(0);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ResultChainTest, AssignOrReturnIntoExistingVariable) {
  auto f = [](int raw) -> Result<int> {
    int out = 0;
    MCSM_ASSIGN_OR_RETURN(out, ParsePositive(raw));
    return out + 1;
  };
  ASSERT_TRUE(f(4).ok());
  EXPECT_EQ(*f(4), 5);
  EXPECT_TRUE(f(-1).status().IsInvalidArgument());
}

TEST(ResultFromStatusTest, NonOkStatusProducesErrorResult) {
  Result<std::vector<int>> r(Status::OutOfRange("span past end"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.status().message(), "span past end");
  EXPECT_TRUE(r.ValueOr({1, 2}).size() == 2);
}

TEST(ResultFromStatusTest, EveryErrorCodeRoundTrips) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::AlreadyExists("c"),   Status::OutOfRange("d"),
      Status::NotImplemented("e"),  Status::ParseError("f"),
      Status::TypeError("g"),       Status::Internal("h"),
  };
  for (const Status& st : statuses) {
    Result<int> r(st);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), st.code());
    EXPECT_EQ(r.status().message(), st.message());
  }
}

TEST(ResultFromStatusDeathTest, OkStatusIsAContractViolation) {
  // Debug and sanitizer builds (MCSM_DCHECK_IS_ON) abort; plain release
  // builds degrade to an Internal-error Result rather than a
  // half-initialized value.
#if MCSM_DCHECK_IS_ON
  EXPECT_DEATH((void)Result<int>{Status::OK()},
               "Result constructed from OK status");
#else
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
#endif
}

TEST(ResultAccessDeathTest, ValueOnErrorAbortsWithCarriedStatus) {
  Result<int> r(Status::NotFound("row 7"));
  EXPECT_DEATH((void)r.value(), "NotFound: row 7");  // lint: allow(VD001)
}

TEST(ResultAccessDeathTest, DereferenceOnErrorAborts) {
  Result<std::string> r(Status::ParseError("unterminated quote"));
  EXPECT_DEATH((void)*r, "Result::value\\(\\) on error");
  EXPECT_DEATH((void)r->size(), "ParseError: unterminated quote");
}

TEST(ResultMoveTest, MoveOutPreservesValueSemantics) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 3u);
}

}  // namespace
}  // namespace mcsm
