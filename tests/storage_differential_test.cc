// Storage-backend differentials: the determinism contract (DESIGN.md §8/§13)
// extends over the storage engine — discovery must produce byte-identical
// results AND byte-identical trace multisets whether the tables live in the
// legacy row store, the columnar arena store, or the paged store under a
// budget that forces spilling, at every thread count. Also: any chunking of
// the same CSV bytes must parse to a byte-identical table and report.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/trace.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "relational/table.h"

namespace mcsm {
namespace {

using relational::Table;
using relational::TableOptions;

// Rebuilds `src` row by row under a different storage backend. Datagen
// builds tables under the env default; the differentials need the same
// bytes under every backend.
Table Rebuild(const Table& src, const TableOptions& options) {
  Table t(src.schema(), options);
  for (size_t r = 0; r < src.num_rows(); ++r) {
    EXPECT_TRUE(t.AppendRow(src.GetRow(r)).ok());
  }
  return t;
}

TableOptions LegacyOpts() {
  TableOptions o;
  o.use_legacy_store = true;
  return o;
}

TableOptions ColumnarOpts() { return TableOptions{}; }

TableOptions PagedOpts() {
  TableOptions o;
  // Small budget + small segments: even the modest test datasets spill.
  o.page_budget_bytes = 4 * 1024;
  o.segment_bytes = 1024;
  return o;
}

// Serializes everything the discovery run decided — formulas, coverage row
// pairs, SQL, truncation — into one comparable string. Two runs are
// "byte-identical" iff these strings match.
std::string Fingerprint(const std::vector<core::DiscoveredTranslation>& all,
                        const relational::Schema& schema) {
  std::ostringstream out;
  out << all.size() << " formulas\n";
  for (const auto& d : all) {
    out << d.formula().ToString(schema) << "|" << d.sql << "|"
        << d.truncated() << "|" << d.coverage.matched_rows() << "|";
    for (const auto& m : d.coverage.matches) {
      out << m.source_row << ":" << m.target_row << ",";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<std::string> SortedIds(const std::vector<TraceEvent>& events) {
  std::vector<std::string> ids;
  ids.reserve(events.size());
  for (const TraceEvent& event : events) ids.push_back(event.Id());
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct RunOutput {
  std::string fingerprint;
  std::vector<std::string> trace_ids;
};

RunOutput RunDiscovery(const datagen::Dataset& data,
                       const TableOptions& storage, size_t threads) {
  InMemoryTraceSink sink;
  core::SearchOptions options;
  options.sample_fraction = 0.10;
  options.num_threads = threads;
  options.env.trace = &sink;
  Table source = Rebuild(data.source, storage);
  Table target = Rebuild(data.target, storage);
  auto all = core::DiscoverAllTranslations(std::move(source),
                                           std::move(target),
                                           data.target_column, options);
  RunOutput out;
  if (!all.ok()) {
    out.fingerprint = "error: " + all.status().ToString();
  } else {
    out.fingerprint = Fingerprint(*all, data.source.schema());
  }
  out.trace_ids = SortedIds(sink.Events());
  return out;
}

struct Family {
  const char* name;
  datagen::Dataset data;
};

std::vector<Family> TestFamilies() {
  std::vector<Family> families;
  {
    datagen::UserIdOptions o;
    o.rows = 300;
    families.push_back({"userid", datagen::MakeUserIdDataset(o)});
  }
  {
    datagen::TimeOptions o;
    o.rows = 250;
    families.push_back({"time", datagen::MakeTimeDataset(o)});
  }
  {
    datagen::DateFormatOptions o;
    o.rows = 250;
    families.push_back({"dateformat", datagen::MakeDateFormatDataset(o)});
  }
  {
    datagen::MergedNamesOptions o;
    o.rows = 250;
    o.distinct_names = 60;
    families.push_back({"mergednames", datagen::MakeMergedNamesDataset(o)});
  }
  return families;
}

TEST(StorageDifferentialTest, DiscoveryIdenticalAcrossBackendsAndThreads) {
  for (const Family& family : TestFamilies()) {
    SCOPED_TRACE(family.name);
    // Baseline: legacy store, single thread.
    RunOutput baseline = RunDiscovery(family.data, LegacyOpts(), 1);
    ASSERT_FALSE(baseline.trace_ids.empty());
    for (const TableOptions& storage :
         {LegacyOpts(), ColumnarOpts(), PagedOpts()}) {
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE(testing::Message()
                     << "encoding="
                     << Rebuild(family.data.source, storage).Stats().encoding
                     << " threads=" << threads);
        RunOutput run = RunDiscovery(family.data, storage, threads);
        EXPECT_EQ(run.fingerprint, baseline.fingerprint);
        EXPECT_EQ(run.trace_ids, baseline.trace_ids);
      }
    }
  }
}

TEST(StorageDifferentialTest, CiteseerCompletesUnderTightPageBudget) {
  // The paper's citation workload with the spill budget far below the
  // text payload: discovery must complete and match the in-memory run.
  datagen::CitationOptions o;
  o.rows = 300;
  datagen::Dataset data = datagen::MakeCitationDataset(o);

  RunOutput in_memory = RunDiscovery(data, ColumnarOpts(), 2);
  TableOptions tight = PagedOpts();
  tight.page_budget_bytes = 2 * 1024;
  Table paged_source = Rebuild(data.source, tight);
  ASSERT_EQ(paged_source.Stats().encoding, "columnar+paged");
  EXPECT_GT(paged_source.Stats().spilled_bytes,
            tight.page_budget_bytes)
      << "dataset too small to exercise spilling";
  RunOutput paged = RunDiscovery(data, tight, 2);
  EXPECT_EQ(paged.fingerprint, in_memory.fingerprint);
  EXPECT_EQ(paged.trace_ids, in_memory.trace_ids);
}

// ---------------------------------------------------------------------------
// CSV chunking differential.

std::string TableBytes(const Table& t) {
  return relational::WriteCsv(t);
}

std::string ReportBytes(const relational::CsvReadReport& r) {
  std::ostringstream out;
  out << r.rows_kept << "/" << r.rows_dropped;
  for (const auto& e : r.first_errors) out << "|" << e;
  return out.str();
}

TEST(CsvChunkingDifferentialTest, AnyChunkingParsesIdentically) {
  // A dirty permissive-mode file with quoted fields, embedded newlines and
  // malformed records — the cases a chunk boundary could split.
  std::string csv =
      "name,bio\n"
      "ann,\"line one\nline two\"\n"
      "bob,plain\n"
      "broken,\"unclosed\nmore,stuff\"\n"
      "carol,\"has \"\"quotes\"\" inside\"\n"
      "dave,\n"
      "wrongcount,a,b,c\n"
      "erin,last\n";

  relational::CsvOptions options;
  options.permissive = true;

  relational::CsvReadReport whole_report;
  auto whole = relational::ReadCsv(csv, options, &whole_report);
  ASSERT_TRUE(whole.ok()) << whole.status();
  const std::string want_table = TableBytes(*whole);
  const std::string want_report = ReportBytes(whole_report);

  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    relational::CsvReadReport report;
    relational::CsvStreamParser parser(options, &report);
    size_t pos = 0;
    while (pos < csv.size()) {
      size_t len = 1 + rng.Uniform(7);  // tiny chunks hit every boundary
      len = std::min(len, csv.size() - pos);
      ASSERT_TRUE(parser.Feed(std::string_view(csv).substr(pos, len)).ok());
      pos += len;
    }
    auto chunked = parser.Finish();
    ASSERT_TRUE(chunked.ok()) << chunked.status();
    EXPECT_EQ(TableBytes(*chunked), want_table);
    EXPECT_EQ(ReportBytes(report), want_report);
  }
}

TEST(CsvChunkingDifferentialTest, PagedIngestMatchesUnpaged) {
  // Streaming a larger generated CSV into a paged table yields the same
  // bytes as the unpaged parse.
  datagen::UserIdOptions o;
  o.rows = 500;
  datagen::Dataset data = datagen::MakeUserIdDataset(o);
  const std::string csv = relational::WriteCsv(data.source);

  relational::CsvOptions options;
  auto unpaged = relational::ReadCsv(csv, options, nullptr);
  ASSERT_TRUE(unpaged.ok());

  relational::CsvStreamParser parser(options, nullptr, PagedOpts());
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t len = std::min<size_t>(4096, csv.size() - pos);
    ASSERT_TRUE(parser.Feed(std::string_view(csv).substr(pos, len)).ok());
    pos += len;
  }
  auto paged = parser.Finish();
  ASSERT_TRUE(paged.ok()) << paged.status();
  EXPECT_EQ(paged->Stats().encoding, "columnar+paged");
  EXPECT_GT(paged->Stats().spilled_pages, 0u);
  EXPECT_EQ(TableBytes(*paged), TableBytes(*unpaged));
}

}  // namespace
}  // namespace mcsm
