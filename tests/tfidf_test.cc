#include "text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/qgram.h"

namespace mcsm::text {
namespace {

TEST(TfIdfTest, DocumentFrequencyCountsInstancesOnce) {
  TfIdfModel model({"banana", "bandana", "cherry"}, 2);
  EXPECT_EQ(model.corpus_size(), 3u);
  // "an" occurs twice in banana but the instance counts once.
  EXPECT_EQ(model.DocumentFrequency("an"), 2);
  EXPECT_EQ(model.DocumentFrequency("ch"), 1);
  EXPECT_EQ(model.DocumentFrequency("zz"), 0);
}

TEST(TfIdfTest, IdfFormula) {
  TfIdfModel model({"ab", "ab", "cd", "ef"}, 2);
  // Eq. 3: idf = log2(N / n).
  EXPECT_DOUBLE_EQ(model.Idf("ab"), std::log2(4.0 / 2.0));
  EXPECT_DOUBLE_EQ(model.Idf("cd"), std::log2(4.0 / 1.0));
  EXPECT_DOUBLE_EQ(model.Idf("zz"), 0.0);
}

TEST(TfIdfTest, UbiquitousGramHasZeroWeight) {
  TfIdfModel model({"ax", "ay", "az"}, 1);
  // 'a' appears in every instance: idf = log2(1) = 0, dropped from vectors.
  auto weights = model.WeightVector("ax");
  EXPECT_EQ(weights.count("a"), 0u);
  EXPECT_GT(weights.at("x"), 0.0);
}

TEST(TfIdfTest, WeightUsesTermFrequency) {
  TfIdfModel model({"anan", "xy"}, 2);
  auto weights = model.WeightVector("anan");
  // tf("an") = 2, idf = log2(2/1) = 1.
  EXPECT_DOUBLE_EQ(weights.at("an"), 2.0);
}

TEST(TfIdfTest, ScorePairFavoursRareOverlap) {
  // All instances share "th"; only two share the rare "qx".
  TfIdfModel model({"thqxa", "thqxb", "thccc", "thddd"}, 2);
  double rare = model.ScorePair("thqxa", "thqxb");
  double common = model.ScorePair("thccc", "thddd");
  EXPECT_GT(rare, common);
}

TEST(TfIdfTest, ScorePairSymmetricAndZeroForDisjoint) {
  TfIdfModel model({"abcd", "efgh", "ijkl"}, 2);
  EXPECT_DOUBLE_EQ(model.ScorePair("abcd", "efgh"),
                   model.ScorePair("efgh", "abcd"));
  EXPECT_DOUBLE_EQ(model.ScorePair("abcd", "ijkl"), 0.0);
}

TEST(TfIdfTest, CosineSelfSimilarityIsOne) {
  TfIdfModel model({"abcd", "efgh", "ijkl"}, 2);
  EXPECT_NEAR(model.CosinePair("abcd", "abcd"), 1.0, 1e-12);
}

TEST(TfIdfTest, CosineBounded) {
  Rng rng(11);
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) corpus.push_back(rng.RandomString(8, "abcde"));
  TfIdfModel model(corpus, 2);
  for (int i = 0; i < 40; ++i) {
    std::string a = rng.RandomString(8, "abcde");
    std::string b = rng.RandomString(8, "abcde");
    double c = model.CosinePair(a, b);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(TfIdfTest, PrecomputedConstructorMatchesCorpusConstructor) {
  std::vector<std::string> corpus = {"banana", "bandana", "cherry"};
  TfIdfModel from_corpus(corpus, 2);
  std::unordered_map<std::string, int> df;
  for (const auto& s : corpus) {
    std::unordered_map<std::string, int> seen = QGramProfile(s, 2);
    for (const auto& [g, c] : seen) df[g] += 1;
  }
  TfIdfModel from_df(df, corpus.size(), 2);
  EXPECT_DOUBLE_EQ(from_corpus.ScorePair("banana", "bandana"),
                   from_df.ScorePair("banana", "bandana"));
}

}  // namespace
}  // namespace mcsm::text
