#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mcsm {
namespace {

TEST(ThreadPoolTest, SizeOneRunsInlineAndSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(ran.size(), [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroResolvesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(8);
  size_t calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // n == 1 takes the inline path (no helper can steal the only index).
  pool.ParallelFor(1, [&](size_t i) { calls += i + 1; });
  EXPECT_EQ(calls, 1u);
  // Fewer items than threads: every index still runs exactly once.
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(3, [&](size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, SlotWritesNeedNoSynchronization) {
  // The pipeline's invariant: fn(i) writes only slot i, so plain (non-atomic)
  // slot writes are race-free and the merged result is schedule-independent.
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<double> slots(kN, 0.0);
  pool.ParallelFor(kN, [&](size_t i) { slots[i] = static_cast<double>(i) * 0.5; });
  double sum = std::accumulate(slots.begin(), slots.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (static_cast<double>(kN - 1) * kN / 2));
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(97, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ThreadPoolTest, WorkSpreadsAcrossThreads) {
  // Not a determinism requirement — just evidence the helpers participate.
  ThreadPool pool(4);
  std::vector<std::thread::id> ran(4000);
  pool.ParallelFor(ran.size(), [&](size_t i) {
    ran[i] = std::this_thread::get_id();
    // A little work so the caller cannot finish the range alone before the
    // helpers wake up (that would be legal, but makes the check vacuous).
    volatile double x = 0;
    for (int k = 0; k < 500; ++k) x = x + static_cast<double>(k);
  });
  std::set<std::thread::id> distinct(ran.begin(), ran.end());
  EXPECT_GE(distinct.size(), 1u);
}

}  // namespace
}  // namespace mcsm
