#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/search.h"
#include "datagen/datasets.h"

namespace mcsm {
namespace {

// The determinism contract under test: event IDENTITY (TraceEvent::Id) never
// depends on wall-clock or thread scheduling, so traces of the same search
// at different thread counts are permutations of one event multiset — and
// tracing itself never changes the discovered formula.

core::SearchOptions FastOptions(size_t threads, TraceSink* trace) {
  core::SearchOptions o;
  o.sample_fraction = 0.10;
  o.num_threads = threads;
  o.env.trace = trace;
  return o;
}

std::vector<std::string> SortedIds(const std::vector<TraceEvent>& events) {
  std::vector<std::string> ids;
  ids.reserve(events.size());
  for (const TraceEvent& event : events) ids.push_back(event.Id());
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(TraceEventTest, IdExcludesElapsed) {
  TraceEvent a;
  a.kind = TraceEventKind::kSpanEnd;
  a.phase = "step1";
  a.name = "select_start_column";
  a.elapsed_ms = 1.5;
  TraceEvent b = a;
  b.elapsed_ms = 900.0;
  EXPECT_EQ(a.Id(), b.Id());
  b.name = "other";
  EXPECT_NE(a.Id(), b.Id());
}

TEST(TraceEventTest, JsonOmitsUnsetFields) {
  TraceEvent event;
  event.phase = "step2";
  event.name = "recipe";
  std::string json;
  AppendTraceEventJson(event, &json);
  EXPECT_EQ(json,
            R"({"kind":"decision","phase":"step2","name":"recipe","value":0})");
  event.column = 3;
  event.sample = 7;
  event.value = 0.5;
  event.detail = "a \"b\"";
  event.metrics.emplace_back("support", 2.0);
  event.elapsed_ms = 1.25;
  json.clear();
  AppendTraceEventJson(event, &json);
  EXPECT_EQ(json,
            R"({"kind":"decision","phase":"step2","name":"recipe","column":3,)"
            R"("sample":7,"value":0.5,"detail":"a \"b\"",)"
            R"("metrics":{"support":2},"elapsed_ms":1.25})");
}

TEST(TraceSinkTest, InMemoryShardsMergeAndCount) {
  InMemoryTraceSink sink;
  TraceSpan span(&sink, "run", "search");
  for (int i = 0; i < 100; ++i) {
    TraceEvent event;
    event.phase = "step2";
    event.name = "recipe";
    event.iteration = i;
    sink.Emit(std::move(event));
  }
  // Span end fires at scope exit.
  {
    TraceSpan inner(&sink, "step1", "select_start_column");
  }
  EXPECT_EQ(sink.event_count(), 103u);  // 100 + run begin + step1 begin/end
  EXPECT_EQ(sink.span_count(), 2u);     // two begins so far
  auto events = sink.CanonicalEvents();
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.Id() < b.Id();
                             }));
}

TEST(TraceSinkTest, TeeFansOut) {
  InMemoryTraceSink first;
  InMemoryTraceSink second;
  TeeTraceSink tee(&first, &second);
  TraceEvent event;
  event.phase = "p";
  event.name = "n";
  tee.Emit(event);
  EXPECT_EQ(first.event_count(), 1u);
  EXPECT_EQ(second.event_count(), 1u);
}

TEST(TraceSinkTest, JsonlSinkWritesOneJsonPerLine) {
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  {
    auto sink = JsonlTraceSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    TraceEvent event;
    event.phase = "step1";
    event.name = "key_score";
    event.value = 1.5;
    (*sink)->Emit(event);
    event.name = "start_column";
    (*sink)->Emit(event);
  }
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":\"decision\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, OpenRejectsUnwritablePath) {
  auto sink = JsonlTraceSink::Open("/nonexistent-dir/x/y/trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

// The tentpole guarantee: per-thread-count traces are permutations of ONE
// event set, and the discovered formula is byte-identical with and without
// a sink attached.
TEST(TraceDeterminismTest, ThreadCountsProducePermutationsOfOneEventSet) {
  datagen::UserIdOptions o;
  o.rows = 1500;
  auto data = datagen::MakeUserIdDataset(o);

  std::vector<std::vector<std::string>> per_thread_ids;
  std::vector<std::string> per_thread_formulas;
  for (size_t threads : {1u, 2u, 8u}) {
    InMemoryTraceSink sink;
    auto d = core::DiscoverTranslation(data.source, data.target, 0,
                                       FastOptions(threads, &sink));
    ASSERT_TRUE(d.ok()) << d.status();
    per_thread_formulas.push_back(d->formula().ToString(data.source.schema()));
    per_thread_ids.push_back(SortedIds(sink.Events()));
    EXPECT_GT(sink.event_count(), 100u) << threads;
  }
  EXPECT_EQ(per_thread_formulas[0], per_thread_formulas[1]);
  EXPECT_EQ(per_thread_formulas[0], per_thread_formulas[2]);
  EXPECT_EQ(per_thread_ids[0], per_thread_ids[1]);
  EXPECT_EQ(per_thread_ids[0], per_thread_ids[2]);
}

TEST(TraceDeterminismTest, TracingDoesNotChangeResults) {
  datagen::UserIdOptions o;
  o.rows = 1500;
  auto data = datagen::MakeUserIdDataset(o);

  auto plain = core::DiscoverTranslation(data.source, data.target, 0,
                                         FastOptions(2, nullptr));
  ASSERT_TRUE(plain.ok()) << plain.status();

  InMemoryTraceSink sink;
  auto traced = core::DiscoverTranslation(data.source, data.target, 0,
                                          FastOptions(2, &sink));
  ASSERT_TRUE(traced.ok()) << traced.status();

  NullTraceSink null_sink;
  auto nulled = core::DiscoverTranslation(data.source, data.target, 0,
                                          FastOptions(2, &null_sink));
  ASSERT_TRUE(nulled.ok()) << nulled.status();

  const std::string expected = plain->formula().ToString(data.source.schema());
  EXPECT_EQ(traced->formula().ToString(data.source.schema()), expected);
  EXPECT_EQ(nulled->formula().ToString(data.source.schema()), expected);
  EXPECT_EQ(traced->coverage.matched_rows(), plain->coverage.matched_rows());
  EXPECT_EQ(nulled->coverage.matched_rows(), plain->coverage.matched_rows());
  EXPECT_GT(sink.event_count(), 0u);
}

TEST(TraceDeterminismTest, EnvValidateRejectsConflictingBudgets) {
  core::SearchOptions options;
  BudgetLimits limits;
  limits.wall_ms = 100;
  RunBudget budget(limits);
  options.env.shared_budget = &budget;
  options.env.budget.wall_ms = 50;  // conflicts with the shared budget
  EXPECT_FALSE(options.Validate().ok());
  options.env.budget = BudgetLimits{};
  EXPECT_TRUE(options.Validate().ok());
}

TEST(TraceDeterminismTest, OptionsValidateRejectsBadKnobs) {
  core::SearchOptions options;
  options.sample_fraction = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.sample_fraction = 2.0;
  EXPECT_FALSE(options.Validate().ok());
  options.sample_fraction = 0.1;
  EXPECT_TRUE(options.Validate().ok());
  options.q = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace mcsm
