#include "vm/program.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/search.h"
#include "core/sql_emitter.h"
#include "datagen/datasets.h"
#include "relational/column_index.h"
#include "relational/database.h"
#include "sql/engine.h"
#include "vm/compiler.h"
#include "vm/executor.h"

namespace mcsm::vm {
namespace {

using core::Region;
using core::TranslationFormula;
using relational::Schema;
using relational::Table;
using relational::Value;

Schema NameSchema() {
  return Table::WithTextColumns({"first", "middle", "last"}).schema();
}

/// The paper's Section 4.1 login formula with a separator literal.
TranslationFormula LoginFormula() {
  return TranslationFormula(
      {Region::Span(0, 1, 1), Region::Literal(", "), Region::SpanToEnd(2, 1)});
}

/// Hand table with every per-row hazard: NULLs, empty strings, values
/// shorter than the spans, multi-byte-safe plain ASCII.
Table HazardTable() {
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  EXPECT_TRUE(t.AppendTextRow({"henry", "j", "warner"}).ok());
  EXPECT_TRUE(t.AppendTextRow({"", "x", "poe"}).ok());  // empty first
  EXPECT_TRUE(t.AppendRow({Value::MakeNull(), Value("q"), Value("null-first")})
                  .ok());
  EXPECT_TRUE(t.AppendTextRow({"a", "b", ""}).ok());  // empty last
  EXPECT_TRUE(
      t.AppendRow({Value("solo"), Value::MakeNull(), Value::MakeNull()}).ok());
  EXPECT_TRUE(t.AppendTextRow({"mary", "anne", "o'hara"}).ok());
  return t;
}

/// Recomputes the trailing FNV-1a checksum after a test mutates wire bytes,
/// so the mutation reaches the layer under test instead of tripping the
/// checksum first.
void FixChecksum(std::string* wire) {
  ASSERT_GE(wire->size(), 4u);
  uint32_t h = 2166136261u;
  for (size_t i = 0; i + 4 < wire->size(); ++i) {
    h ^= static_cast<unsigned char>((*wire)[i]);
    h *= 16777619u;
  }
  for (size_t i = 0; i < 4; ++i) {
    (*wire)[wire->size() - 4 + i] = static_cast<char>((h >> (8 * i)) & 0xff);
  }
}

/// Per-row oracle: Apply over every source row.
std::vector<std::optional<std::string>> ApplyAll(const TranslationFormula& f,
                                                 const Table& source) {
  std::vector<std::optional<std::string>> out;
  out.reserve(source.num_rows());
  for (size_t row = 0; row < source.num_rows(); ++row) {
    out.push_back(f.Apply(source, row));
  }
  return out;
}

/// The acceptance contract of DESIGN.md §12: for one formula over one
/// source table, the VM (at several thread counts and batch sizes), the SQL
/// engine executing the emitted query, and per-row Apply must agree byte
/// for byte on both which rows are covered and what they translate to.
void ExpectThreeWayAgreement(const TranslationFormula& formula,
                             const Table& source) {
  const auto oracle = ApplyAll(formula, source);

  // SQL path: the emitted query over a copy of the source registered as t1.
  core::SqlEmitter::Options sql_options;
  sql_options.source_table = "t1";
  auto sql = core::SqlEmitter::ToSql(formula, source.schema(), sql_options);
  ASSERT_TRUE(sql.ok()) << sql.status();
  relational::Database db;
  ASSERT_TRUE(db.CreateTable("t1", source).ok());
  sql::Engine engine(&db);
  auto rs = engine.Execute(*sql);
  ASSERT_TRUE(rs.ok()) << rs.status() << " for " << *sql;
  std::vector<std::string> covered_values;
  std::vector<uint32_t> covered_rows;
  for (size_t row = 0; row < oracle.size(); ++row) {
    if (oracle[row].has_value()) {
      covered_values.push_back(*oracle[row]);
      covered_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  ASSERT_EQ(rs->num_rows(), covered_values.size()) << *sql;
  for (size_t i = 0; i < covered_values.size(); ++i) {
    ASSERT_FALSE(rs->rows[i][0].is_null());
    EXPECT_EQ(rs->rows[i][0].text(), covered_values[i])
        << "sql row " << i << " of " << *sql;
  }

  // VM path, across thread counts and batch sizes (including a batch size
  // that does not divide the row count, to exercise the ragged tail).
  auto program = CompileFormula(formula, source.schema());
  ASSERT_TRUE(program.ok()) << program.status();
  std::string first_bytes;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t batch : {size_t{7}, size_t{4096}}) {
      TranslateOptions options;
      options.num_threads = threads;
      options.batch_rows = batch;
      auto result = Translate(*program, source, options);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_FALSE(result->truncated);
      EXPECT_EQ(result->rows_processed, source.num_rows());
      ASSERT_EQ(result->output_rows(), covered_rows.size())
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result->rows, covered_rows);
      for (size_t i = 0; i < covered_rows.size(); ++i) {
        ASSERT_EQ(result->value(i), covered_values[i])
            << "row " << covered_rows[i] << " threads=" << threads
            << " batch=" << batch;
      }
      if (first_bytes.empty() && !result->bytes.empty()) {
        first_bytes = result->bytes;
      } else if (!result->bytes.empty()) {
        EXPECT_EQ(result->bytes, first_bytes)
            << "output not byte-identical at threads=" << threads
            << " batch=" << batch;
      }
    }
  }
}

/// Discovers a formula for `data` and runs the three-way agreement over the
/// full source table.
void DiscoverAndAgree(const datagen::Dataset& data,
                      core::SearchOptions options) {
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, options);
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_TRUE(d->formula().IsComplete())
      << d->formula().ToString(data.source.schema());
  ExpectThreeWayAgreement(d->formula(), data.source);
}

core::SearchOptions FastOptions() {
  core::SearchOptions o;
  o.sample_fraction = 0.10;
  return o;
}

// ---------------------------------------------------------------------------
// Compiler goldens.

TEST(VmCompilerTest, LoginFormulaGolden) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok()) << program.status();
  const std::vector<Instruction> expected = {
      {OpCode::kLoadCol, 0, 0, 0},  {OpCode::kGuardLen, 0, 1, 0},
      {OpCode::kLoadCol, 1, 2, 0}, {OpCode::kGuardLen, 1, 1, 0},
      {OpCode::kEmitSub, 0, 0, 1}, {OpCode::kEmitLit, 0, 2, 0},
      {OpCode::kEmitTail, 1, 0, 0}, {OpCode::kRet, 0, 0, 0},
  };
  EXPECT_EQ(program->code(), expected);
  EXPECT_EQ(program->literals(), ", ");
  EXPECT_EQ(program->num_registers(), 2u);
  EXPECT_EQ(program->min_columns(), 3u);
}

TEST(VmCompilerTest, DisassemblyGolden) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->Disassemble(),
            "; vm program v1: 8 instructions, 2 registers, needs >= 3 source "
            "columns, 2 literal bytes\n"
            "   0: load  r0, col 0\n"
            "   1: guard r0, len >= 1\n"
            "   2: load  r1, col 2\n"
            "   3: guard r1, len >= 1\n"
            "   4: emit  r0[0..1)\n"
            "   5: lit   \", \"\n"
            "   6: tail  r1[0..]\n"
            "   7: ret\n");
}

TEST(VmCompilerTest, SharedRegisterGetsMaxGuard) {
  // Two spans of the same column: one register, one guard at the larger
  // requirement (a [2-4] span needs 4 chars; the [1-n] tail needs 1).
  TranslationFormula f({Region::SpanToEnd(1, 1), Region::Span(1, 2, 4)});
  auto program = CompileFormula(f, NameSchema());
  ASSERT_TRUE(program.ok()) << program.status();
  const std::vector<Instruction> expected = {
      {OpCode::kLoadCol, 0, 1, 0},
      {OpCode::kGuardLen, 0, 4, 0},
      {OpCode::kEmitTail, 0, 0, 0},
      {OpCode::kEmitSub, 0, 1, 3},
      {OpCode::kRet, 0, 0, 0},
  };
  EXPECT_EQ(program->code(), expected);
  EXPECT_EQ(program->num_registers(), 1u);
  EXPECT_EQ(program->min_columns(), 2u);
}

TEST(VmCompilerTest, RejectsWhatSqlEmitterRejects) {
  const Schema schema = NameSchema();
  // Incomplete and empty formulas: InvalidArgument, same as SqlEmitter.
  TranslationFormula incomplete(
      {Region::Unknown(), Region::SpanToEnd(2, 1)});
  EXPECT_TRUE(CompileFormula(incomplete, schema).status().IsInvalidArgument());
  EXPECT_TRUE(core::SqlEmitter::ToSql(incomplete, schema, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      CompileFormula(TranslationFormula{}, schema).status()
          .IsInvalidArgument());
  // Column beyond the schema: OutOfRange, same as SqlEmitter.
  TranslationFormula oob({Region::SpanToEnd(7, 1)});
  EXPECT_TRUE(CompileFormula(oob, schema).status().IsOutOfRange());
  EXPECT_TRUE(
      core::SqlEmitter::ToSql(oob, schema, {}).status().IsOutOfRange());
}

TEST(VmCompilerTest, RejectsMalformedSpans) {
  const Schema schema = NameSchema();
  EXPECT_TRUE(CompileFormula(TranslationFormula({Region::Span(0, 0, 1)}),
                             schema)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompileFormula(TranslationFormula({Region::Span(0, 3, 2)}),
                             schema)
                  .status()
                  .IsInvalidArgument());
}

TEST(VmCompilerTest, AllLiteralFormulaCoversEveryRow) {
  // No column references: min_columns 0, no guards, every row covered —
  // in all three backends (the SQL form has no WHERE clause).
  TranslationFormula f({Region::Literal("fixed")});
  auto program = CompileFormula(f, NameSchema());
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->min_columns(), 0u);
  EXPECT_EQ(program->num_registers(), 0u);
  ExpectThreeWayAgreement(f, HazardTable());
}

// ---------------------------------------------------------------------------
// Wire form.

TEST(VmWireTest, RoundTripIsExact) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok());
  const std::string wire = program->Serialize();
  auto decoded = Program::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, *program);
  EXPECT_EQ(decoded->Serialize(), wire);
}

TEST(VmWireTest, MalformedWireRejectedWithStatus) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok());
  const std::string wire = program->Serialize();

  EXPECT_TRUE(Program::Deserialize("").status().IsParseError());
  EXPECT_TRUE(Program::Deserialize("MCVM").status().IsParseError());

  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_TRUE(Program::Deserialize(bad_magic).status().IsParseError());

  // Version skew: future versions must be refused, not misparsed. The
  // version check precedes the checksum so a skewed header is reported as
  // skew even with a stale checksum.
  std::string skewed = wire;
  skewed[4] = 9;
  EXPECT_TRUE(Program::Deserialize(skewed).status().IsParseError());

  std::string truncated = wire.substr(0, wire.size() - 5);
  EXPECT_TRUE(Program::Deserialize(truncated).status().IsParseError());

  std::string trailing = wire + "extra";
  EXPECT_TRUE(Program::Deserialize(trailing).status().IsParseError());

  std::string corrupt = wire;
  corrupt[wire.size() / 2] ^= 0x40;
  EXPECT_TRUE(Program::Deserialize(corrupt).status().IsParseError());
}

TEST(VmWireTest, BadOpcodeRejectedBehindValidChecksum) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok());
  std::string wire = program->Serialize();
  // First instruction's opcode byte sits right after the 24-byte header.
  wire[24] = static_cast<char>(0xee);
  FixChecksum(&wire);
  auto decoded = Program::Deserialize(wire);
  EXPECT_TRUE(decoded.status().IsParseError()) << decoded.status();
}

TEST(VmWireTest, InvalidProgramBehindValidWireRejectedByValidate) {
  // Structurally sound wire bytes carrying a semantically bad program
  // (register read before load) must come back as a Status from Validate,
  // not execute.
  Program bad;
  bad.set_num_registers(1);
  bad.set_min_columns(1);
  bad.Append({OpCode::kEmitTail, 0, 0, 0});  // r0 never loaded
  bad.Append({OpCode::kRet, 0, 0, 0});
  auto decoded = Program::Deserialize(bad.Serialize());
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

TEST(VmWireTest, HexRoundTripAndRejects) {
  const std::string bytes = std::string("\x00\x7f\xff\x10", 4);
  EXPECT_EQ(BytesToHex(bytes), "007fff10");
  auto back = HexToBytes("007fff10");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bytes);
  EXPECT_TRUE(HexToBytes("abc").status().IsParseError());
  EXPECT_TRUE(HexToBytes("zz").status().IsParseError());
}

// ---------------------------------------------------------------------------
// Executor semantics.

TEST(VmExecutorTest, HazardRowsMatchApplyAndSql) {
  ExpectThreeWayAgreement(LoginFormula(), HazardTable());
}

TEST(VmExecutorTest, FixedSpanNeedsFullWidth) {
  // A [2-4] span requires 4 characters, not 2: "abc" must NOT yield "bc".
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  ASSERT_TRUE(t.AppendTextRow({"abc", "", ""}).ok());
  ASSERT_TRUE(t.AppendTextRow({"abcd", "", ""}).ok());
  ExpectThreeWayAgreement(TranslationFormula({Region::Span(0, 2, 4)}), t);
}

TEST(VmExecutorTest, RejectsTableNarrowerThanProgram) {
  auto program = CompileFormula(LoginFormula(), NameSchema());
  ASSERT_TRUE(program.ok());
  Table narrow = Table::WithTextColumns({"only"});
  ASSERT_TRUE(narrow.AppendTextRow({"value"}).ok());
  EXPECT_TRUE(
      Translate(*program, narrow).status().IsInvalidArgument());
}

TEST(VmExecutorTest, GuardlessEmitsStayInBounds) {
  // A hand-built program with NO guards and a span far past every value:
  // emits must fail such rows cleanly (Apply semantics), never read out of
  // bounds. This is the hostile-wire-program safety property.
  Program p;
  p.set_num_registers(1);
  p.set_min_columns(1);
  p.Append({OpCode::kLoadCol, 0, 0, 0});
  p.Append({OpCode::kEmitSub, 0, 1000, 5, });
  p.Append({OpCode::kRet, 0, 0, 0});
  ASSERT_TRUE(p.Validate().ok());
  Table t = Table::WithTextColumns({"v"});
  ASSERT_TRUE(t.AppendTextRow({"short"}).ok());
  auto result = Translate(p, t);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output_rows(), 0u);
  EXPECT_EQ(result->rows_processed, 1u);
}

TEST(VmExecutorTest, PartialEmitRollsBackWholeRow) {
  // first emits fine, then the last-column emit fails: the row must
  // contribute zero bytes, not the partial prefix.
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  ASSERT_TRUE(t.AppendTextRow({"ok", "x", ""}).ok());
  Program p;
  p.set_num_registers(2);
  p.set_min_columns(3);
  p.Append({OpCode::kLoadCol, 0, 0, 0});
  p.Append({OpCode::kLoadCol, 1, 2, 0});
  p.Append({OpCode::kEmitSub, 0, 0, 2});
  p.Append({OpCode::kEmitTail, 1, 0, 0});  // last is empty -> row fails
  p.Append({OpCode::kRet, 0, 0, 0});
  ASSERT_TRUE(p.Validate().ok());
  auto result = Translate(p, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows(), 0u);
  EXPECT_TRUE(result->bytes.empty());
}

// ---------------------------------------------------------------------------
// Budget integration.

Table WideTable(size_t rows) {
  Table t = Table::WithTextColumns({"first", "middle", "last"});
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendTextRow({"henry" + std::to_string(i), "j", "warner"})
                    .ok());
  }
  return t;
}

TEST(VmBudgetTest, RowCapTripsMidBatchWithCleanPartial) {
  const Table t = WideTable(1000);
  auto program = CompileFormula(LoginFormula(), t.schema());
  ASSERT_TRUE(program.ok());
  BudgetLimits limits;
  limits.max_rows_translated = 100;
  RunBudget budget(limits);
  TranslateOptions options;
  options.budget = &budget;
  auto result = Translate(*program, t, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->budget_trip, BudgetTrip::kRows);
  // The executor charges in kChargeQuantum=64 row quanta before executing:
  // the first quantum fits under the 100-row cap, the second trips — so the
  // clean partial is exactly one quantum.
  EXPECT_EQ(result->rows_processed, Executor::kChargeQuantum);
  // And the partial is exactly Apply over that prefix.
  const auto oracle = ApplyAll(LoginFormula(), t);
  ASSERT_EQ(result->output_rows(), result->rows_processed);
  for (size_t i = 0; i < result->output_rows(); ++i) {
    EXPECT_EQ(result->value(i), *oracle[result->rows[i]]);
  }
}

TEST(VmBudgetTest, ParallelTripKeepsContiguousPrefix) {
  const Table t = WideTable(2000);
  auto program = CompileFormula(LoginFormula(), t.schema());
  ASSERT_TRUE(program.ok());
  BudgetLimits limits;
  limits.max_rows_translated = 500;
  RunBudget budget(limits);
  TranslateOptions options;
  options.budget = &budget;
  options.num_threads = 4;
  options.batch_rows = 100;
  auto result = Translate(*program, t, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->budget_trip, BudgetTrip::kRows);
  EXPECT_GT(result->rows_processed, 0u);
  EXPECT_LT(result->rows_processed, t.num_rows());
  // Whatever prefix survived must be gapless and byte-identical to Apply.
  const auto oracle = ApplyAll(LoginFormula(), t);
  ASSERT_EQ(result->output_rows(), result->rows_processed);
  for (size_t i = 0; i < result->output_rows(); ++i) {
    EXPECT_EQ(result->rows[i], i);
    EXPECT_EQ(result->value(i), *oracle[i]);
  }
}

TEST(VmBudgetTest, CancelledBudgetStopsBeforeAnyRow) {
  const Table t = WideTable(100);
  auto program = CompileFormula(LoginFormula(), t.schema());
  ASSERT_TRUE(program.ok());
  RunBudget budget(BudgetLimits{});
  budget.Cancel();
  TranslateOptions options;
  options.budget = &budget;
  auto result = Translate(*program, t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->budget_trip, BudgetTrip::kCancelled);
  EXPECT_EQ(result->rows_processed, 0u);
  EXPECT_EQ(result->output_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Differential suite: discovered formulas over every datagen family,
// VM vs SQL engine vs Apply (DESIGN.md §12 acceptance contract).

TEST(VmDifferentialTest, UserIdDataset) {
  datagen::UserIdOptions o;
  o.rows = 2000;
  DiscoverAndAgree(datagen::MakeUserIdDataset(o), FastOptions());
}

TEST(VmDifferentialTest, TimeDataset) {
  datagen::TimeOptions o;
  o.rows = 3000;
  DiscoverAndAgree(datagen::MakeTimeDataset(o), FastOptions());
}

TEST(VmDifferentialTest, MergedNamesDataset) {
  datagen::MergedNamesOptions o;
  o.rows = 4000;
  o.distinct_names = 800;
  DiscoverAndAgree(datagen::MakeMergedNamesDataset(o), FastOptions());
}

TEST(VmDifferentialTest, MergedNamesCommaSeparator) {
  datagen::MergedNamesOptions o;
  o.rows = 3000;
  o.distinct_names = 600;
  o.comma_separator = true;
  core::SearchOptions so = FastOptions();
  so.detect_separators = true;
  DiscoverAndAgree(datagen::MakeMergedNamesDataset(o), so);
}

TEST(VmDifferentialTest, CitationDataset) {
  datagen::CitationOptions o;
  o.rows = 5000;
  core::SearchOptions so;
  so.sample_fraction = 0.02;
  DiscoverAndAgree(datagen::MakeCitationDataset(o), so);
}

TEST(VmDifferentialTest, DateFormatDataset) {
  datagen::DateFormatOptions o;
  o.rows = 3000;
  core::SearchOptions so = FastOptions();
  so.detect_separators = true;
  DiscoverAndAgree(datagen::MakeDateFormatDataset(o), so);
}

TEST(VmDifferentialTest, PartNumberDataset) {
  datagen::PartNumberOptions o;
  o.rows = 3000;
  core::SearchOptions so = FastOptions();
  so.detect_separators = true;
  DiscoverAndAgree(datagen::MakePartNumberDataset(o), so);
}

TEST(VmDifferentialTest, LegacyAndCompressedPostingsAgree) {
  // Discovery with a legacy-postings target index and with the default
  // block-compressed one must find the same formula, and that formula must
  // translate to identical bytes through the VM.
  datagen::UserIdOptions o;
  o.rows = 2000;
  auto data = datagen::MakeUserIdDataset(o);

  std::string formulas[2];
  std::string vm_bytes[2];
  for (int legacy = 0; legacy < 2; ++legacy) {
    relational::ColumnIndex::Options idx;
    idx.q = 2;
    idx.build_postings = true;
    idx.use_legacy_postings = (legacy == 1);
    core::SearchOptions so = FastOptions();
    so.env.target_index =
        std::make_shared<relational::ColumnIndex>(data.target, 0, idx);
    auto d = core::DiscoverTranslation(data.source, data.target, 0, so);
    ASSERT_TRUE(d.ok()) << d.status();
    formulas[legacy] = d->formula().ToString(data.source.schema());
    auto program = CompileFormula(d->formula(), data.source.schema());
    ASSERT_TRUE(program.ok()) << program.status();
    auto result = Translate(*program, data.source);
    ASSERT_TRUE(result.ok()) << result.status();
    vm_bytes[legacy] = result->bytes;
  }
  EXPECT_EQ(formulas[0], formulas[1]);
  EXPECT_EQ(vm_bytes[0], vm_bytes[1]);
}

}  // namespace
}  // namespace mcsm::vm
