#!/usr/bin/env python3
"""Validates a discovery trace artifact.

Accepts either format the pipeline produces:
  - JSONL (discover_csv --trace FILE, JsonlTraceSink): one event per line
  - a single JSON object {"schema_version":1,"events":[...]} (the service's
    GET /v1/jobs/{id}/trace body, TraceEventsToJson)

Checks every event against the wire schema (kind vocabulary, required
fields, coordinate/metric types) and that span begin/end events balance per
(phase, name). Exits 0 on a valid trace, 1 otherwise, printing a summary
either way. Usage:

  tools/check_trace.py <trace.jsonl | trace.json>
"""
import collections
import json
import sys

KINDS = {"span_begin", "span_end", "counter", "decision"}
ALLOWED_KEYS = {
    "kind", "phase", "name", "iteration", "column", "sample",
    "value", "detail", "metrics", "elapsed_ms",
}


def check_event(event, errors, where):
    if not isinstance(event, dict):
        errors.append(f"{where}: event is not an object")
        return None
    unknown = set(event) - ALLOWED_KEYS
    if unknown:
        errors.append(f"{where}: unknown keys {sorted(unknown)}")
    for key in ("kind", "phase", "name"):
        if not isinstance(event.get(key), str) or not event[key]:
            errors.append(f"{where}: '{key}' must be a non-empty string")
            return None
    if event["kind"] not in KINDS:
        errors.append(f"{where}: bad kind '{event['kind']}'")
        return None
    if not isinstance(event.get("value"), (int, float)):
        errors.append(f"{where}: 'value' must be a number")
    for coord in ("iteration", "column", "sample"):
        if coord in event and (not isinstance(event[coord], int)
                               or event[coord] < 0):
            errors.append(f"{where}: '{coord}' must be a non-negative int")
    if "detail" in event and not isinstance(event["detail"], str):
        errors.append(f"{where}: 'detail' must be a string")
    if "metrics" in event:
        metrics = event["metrics"]
        if not isinstance(metrics, dict) or not all(
                isinstance(v, (int, float)) for v in metrics.values()):
            errors.append(f"{where}: 'metrics' must map names to numbers")
    if "elapsed_ms" in event:
        if event["kind"] != "span_end":
            errors.append(f"{where}: 'elapsed_ms' only belongs on span_end")
        elif not isinstance(event["elapsed_ms"], (int, float)) \
                or event["elapsed_ms"] < 0:
            errors.append(f"{where}: 'elapsed_ms' must be a number >= 0")
    return event


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()

    errors = []
    events = []
    stripped = text.lstrip()
    if stripped.startswith("{") and '"events"' in stripped.split("\n", 1)[0]:
        # Single-object service form.
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            print(f"FAIL: {path}: not valid JSON: {e}", file=sys.stderr)
            return 1
        if doc.get("schema_version") != 1:
            errors.append("document: schema_version must be 1")
        raw_events = doc.get("events")
        if not isinstance(raw_events, list):
            errors.append("document: 'events' must be a list")
            raw_events = []
        for i, event in enumerate(raw_events):
            checked = check_event(event, errors, f"events[{i}]")
            if checked is not None:
                events.append(checked)
    else:
        # JSONL form.
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: not valid JSON: {e}")
                continue
            checked = check_event(event, errors, f"line {lineno}")
            if checked is not None:
                events.append(checked)

    # Span balance: every (phase, name) must close as often as it opens.
    spans = collections.Counter()
    kinds = collections.Counter()
    for event in events:
        kinds[event["kind"]] += 1
        key = (event["phase"], event["name"])
        if event["kind"] == "span_begin":
            spans[key] += 1
        elif event["kind"] == "span_end":
            spans[key] -= 1
    for (phase, name), depth in sorted(spans.items()):
        if depth != 0:
            errors.append(
                f"span {phase}/{name}: {depth:+d} unbalanced begin/end")

    summary = ", ".join(f"{k}={kinds[k]}" for k in sorted(kinds)) or "empty"
    if errors:
        for error in errors[:20]:
            print(f"FAIL: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"FAIL: ... and {len(errors) - 20} more", file=sys.stderr)
        print(f"check_trace: {path}: {len(events)} events ({summary}); "
              f"{len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"check_trace: {path}: OK — {len(events)} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
