#!/usr/bin/env bash
# Smoke test for fault-tolerant multi-replica serving (README "Clustering"):
# boots three replica servers plus one router (mcsm_serve --route-to), posts
# two tables through the router, runs one job end-to-end, then SIGKILLs the
# replica that owns a second in-flight job and verifies the router replays it
# on a survivor with a byte-identical formula — which must also byte-match
# what the single-node discover_csv CLI prints for the same CSVs (the
# determinism contract that makes failover-by-replay sound). Finishes with
# router metrics checks (replays, member marked down) and graceful drains.
# Run from anywhere:
#
#   tools/cluster_smoke.sh <path-to-mcsm_serve> <path-to-discover_csv>
#
# The replicas run with a service.job delay failpoint so the kill lands
# mid-run deterministically. The router inherits this script's environment,
# so CI can arm client-side failpoints for a chaos leg, e.g.:
#
#   MCSM_FAILPOINTS="client.read=delay:200ms@3" tools/cluster_smoke.sh ...
#
# Designed to run under ASan/UBSan in CI — any sanitizer report fails the
# affected process and therefore the script.
set -euo pipefail

SERVE_BIN=${1:?usage: cluster_smoke.sh <path-to-mcsm_serve> <path-to-discover_csv>}
DISCOVER_BIN=${2:?usage: cluster_smoke.sh <path-to-mcsm_serve> <path-to-discover_csv>}
WORKDIR=$(mktemp -d)
REPLICA_PIDS=()
ROUTER_PID=""
cleanup() {
  [ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2>/dev/null
  for pid in "${REPLICA_PIDS[@]:-}"; do kill "$pid" 2>/dev/null; done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# http VERB PATH [BODY] -> sets $HTTP_STATUS and $BODY (no subshell, so the
# variables survive). Talks to whatever $PORT points at.
http() {
  local verb=$1 path=$2 payload=${3:-}
  HTTP_STATUS=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' -X "$verb" \
                ${payload:+-d "$payload"} "http://127.0.0.1:$PORT$path")
  BODY=$(cat "$WORKDIR/resp")
}

json_field() {  # json_field KEY <<< uses $BODY; prints the string/number value
  echo "$BODY" | sed -n "s/.*\"$1\":\"\\([^\"]*\\)\".*/\\1/p; t; s/.*\"$1\":\\([0-9][0-9]*\\).*/\\1/p"
}

# --- fixture CSVs + single-node baseline ------------------------------------
cat > "$WORKDIR/people.csv" <<'CSV'
first,last
henry,warner
anna,smith
bob,jones
carol,white
dave,brown
eve,black
CSV
cat > "$WORKDIR/logins.csv" <<'CSV'
login
hwarner
asmith
bjones
cwhite
dbrown
eblack
CSV

"$DISCOVER_BIN" "$WORKDIR/people.csv" "$WORKDIR/logins.csv" login \
  > "$WORKDIR/baseline.log" 2>&1 \
  || { cat "$WORKDIR/baseline.log"; fail "discover_csv baseline failed"; }
BASELINE=$(sed -n 's/^formula : //p' "$WORKDIR/baseline.log")
[ -n "$BASELINE" ] || fail "no formula in discover_csv output"
echo "single-node baseline formula: $BASELINE"

# --- boot three replicas + the router ---------------------------------------
# service.job delay keeps every job in flight for 300ms so the SIGKILL below
# lands mid-run deterministically. Client-side failpoint sites from the
# caller's MCSM_FAILPOINTS only fire in the router (the sole HttpClient
# user), so the replicas override the variable without losing coverage.
for i in 1 2 3; do
  MCSM_FAILPOINTS="service.job=delay:300ms" \
    "$SERVE_BIN" --port 0 --port-file "$WORKDIR/replica$i.port" \
                 --job-workers 1 --max-queue 4 \
                 >"$WORKDIR/replica$i.log" 2>&1 &
  REPLICA_PIDS+=($!)
done
MEMBERS=""
REPLICA_PORTS=()
for i in 1 2 3; do
  for _ in $(seq 1 100); do
    [ -s "$WORKDIR/replica$i.port" ] && break
    kill -0 "${REPLICA_PIDS[$((i-1))]}" 2>/dev/null \
      || { cat "$WORKDIR/replica$i.log"; fail "replica $i died at boot"; }
    sleep 0.1
  done
  [ -s "$WORKDIR/replica$i.port" ] || fail "replica $i never wrote --port-file"
  RPORT=$(cat "$WORKDIR/replica$i.port")
  REPLICA_PORTS+=("$RPORT")
  MEMBERS="${MEMBERS:+$MEMBERS,}127.0.0.1:$RPORT"
done
echo "replicas up: $MEMBERS"

"$SERVE_BIN" --port 0 --port-file "$WORKDIR/router.port" \
             --route-to "$MEMBERS" --health-interval-ms 100 \
             >"$WORKDIR/router.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORKDIR/router.port" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null \
    || { cat "$WORKDIR/router.log"; fail "router died at boot"; }
  sleep 0.1
done
[ -s "$WORKDIR/router.port" ] || fail "router never wrote --port-file"
PORT=$(cat "$WORKDIR/router.port")
echo "router up on port $PORT"

http GET /v1/healthz
[ "$HTTP_STATUS" = 200 ] || fail "router healthz -> $HTTP_STATUS"
echo "$BODY" | grep -q '"role":"router"' || fail "router healthz body: $BODY"

# --- register tables through the router -------------------------------------
for spec in "people:people.csv" "logins:logins.csv"; do
  NAME=${spec%%:*}; FILE=${spec#*:}
  PAYLOAD=$(python3 -c 'import json,sys; print(json.dumps({"name": sys.argv[1], "csv": open(sys.argv[2]).read()}))' \
            "$NAME" "$WORKDIR/$FILE")
  http POST /v1/tables "$PAYLOAD"
  [ "$HTTP_STATUS" = 200 ] || fail "POST /tables $NAME -> $HTTP_STATUS: $BODY"
done
http GET /v1/tables
echo "$BODY" | grep -q '"people"' || fail "catalog missing people: $BODY"
echo "$BODY" | grep -q '"logins"' || fail "catalog missing logins: $BODY"

submit_job() {  # -> sets $JOB_ID and $ASSIGNEE
  http POST /v1/jobs '{"source_table":"people","target_table":"logins","target_column":0,"deadline_ms":30000}'
  [ "$HTTP_STATUS" = 202 ] || fail "POST /jobs -> $HTTP_STATUS: $BODY"
  JOB_ID=$(json_field id)
  ASSIGNEE=$(json_field member)
  [ -n "$JOB_ID" ] || fail "no job id in: $BODY"
  [ -n "$ASSIGNEE" ] || fail "no member in: $BODY"
}

poll_job_done() {  # poll_job_done ID -> sets $BODY to the terminal snapshot
  local id=$1 state=""
  for _ in $(seq 1 200); do
    http GET "/v1/jobs/$id"
    state=$(json_field state)
    [ "$state" = done ] && return 0
    [ "$state" = failed ] && fail "job $id failed: $BODY"
    sleep 0.1
  done
  fail "job $id never finished (state=$state)"
}

# --- happy-path job through the router --------------------------------------
submit_job
echo "job $JOB_ID assigned to $ASSIGNEE"
poll_job_done "$JOB_ID"
FORMULA1=$(json_field formula)
[ "$FORMULA1" = "$BASELINE" ] \
  || fail "routed formula '$FORMULA1' != single-node '$BASELINE'"
echo "routed job matches single-node baseline"

# --- kill the owner mid-run; the router must replay on a survivor -----------
submit_job
VICTIM_PORT=${ASSIGNEE##*:}
VICTIM_PID=""
for i in 0 1 2; do
  [ "${REPLICA_PORTS[$i]}" = "$VICTIM_PORT" ] && VICTIM_PID=${REPLICA_PIDS[$i]}
done
[ -n "$VICTIM_PID" ] || fail "assignee $ASSIGNEE is not a known replica"
kill -9 "$VICTIM_PID"   # job is mid-run (300ms failpoint delay): hard death
echo "killed replica $ASSIGNEE (pid $VICTIM_PID) with job $JOB_ID in flight"

poll_job_done "$JOB_ID"
FORMULA2=$(json_field formula)
[ "$FORMULA2" = "$BASELINE" ] \
  || fail "replayed formula '$FORMULA2' != single-node '$BASELINE'"
echo "replayed job matches single-node baseline byte-for-byte"

# --- router metrics reflect the failover ------------------------------------
http GET /v1/metrics
[ "$HTTP_STATUS" = 200 ] || fail "router /metrics -> $HTTP_STATUS"
REPLAYS=$(echo "$BODY" | sed -n 's/^mcsm_router_replays_total \([0-9]*\)$/\1/p')
[ -n "$REPLAYS" ] && [ "$REPLAYS" -ge 1 ] || fail "no replays counted: $BODY"
# Give the health checker a couple of 100ms sweeps to confirm the death.
DOWN_SEEN=0
for _ in $(seq 1 50); do
  http GET /v1/metrics
  if echo "$BODY" | grep -q "mcsm_cluster_member_state{member=\"127.0.0.1:$VICTIM_PORT\",state=\"down\"}"; then
    DOWN_SEEN=1; break
  fi
  sleep 0.1
done
[ "$DOWN_SEEN" = 1 ] || fail "victim never marked down in: $BODY"
echo "router metrics: $REPLAYS replay(s), victim marked down"

# --- graceful drains --------------------------------------------------------
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
  kill -0 "$ROUTER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$ROUTER_PID" 2>/dev/null; then
  kill -9 "$ROUTER_PID"; fail "router did not stop within 10s of SIGTERM"
fi
wait "$ROUTER_PID" && RC=0 || RC=$?
ROUTER_PID=""
[ "$RC" = 0 ] || { cat "$WORKDIR/router.log"; fail "router exited $RC"; }
grep -q "drained; bye" "$WORKDIR/router.log" || fail "router drain banner missing"

for i in 0 1 2; do
  PID=${REPLICA_PIDS[$i]}
  [ "${REPLICA_PORTS[$i]}" = "$VICTIM_PORT" ] && continue  # already SIGKILLed
  kill -TERM "$PID" 2>/dev/null || true
  for _ in $(seq 1 200); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID"; fail "replica $((i+1)) did not drain after SIGTERM"
  fi
  wait "$PID" && RC=0 || RC=$?
  [ "$RC" = 0 ] || { cat "$WORKDIR/replica$((i+1)).log"; fail "replica $((i+1)) exited $RC"; }
  grep -q "drained; bye" "$WORKDIR/replica$((i+1)).log" \
    || fail "replica $((i+1)) drain banner missing"
done
REPLICA_PIDS=()

echo "cluster smoke: OK"
