#!/usr/bin/env python3
"""Custom lint for the mcsm error-handling and concurrency discipline.

The scanner strips // comments, /* */ block comments (multi-line), string
literals, character literals, and raw string literals (R"delim(...)delim",
multi-line) before matching, preserving the file's line structure so findings
carry real line numbers. Suppressions are read from the RAW line, so a marker
works even though it lives in a comment.

Rules (each suppressible on a specific line with `// lint: allow(<RULE>)`;
LK001 additionally requires a rationale: `// lint: allow(LK001): <why>`):

  ND001  src/common/status.h and src/common/result.h must keep their
         [[nodiscard]] class annotations (the compiler enforces call sites;
         this guards the declarations themselves).
  AS001  bare assert() is banned outside src/common/ — use MCSM_CHECK /
         MCSM_DCHECK from common/check.h, which print context and fire in
         sanitizer builds.
  VD001  ValueOrDie-style access: `.value()` / `*result` on a Result must be
         dominated by an ok() test, MCSM_ASSIGN_OR_RETURN, or MCSM_CHECK_OK
         within the surrounding lines. This is a heuristic (line-based, not
         AST-based); suppress deliberate uses with the marker above.
  SS001  files that adopted bounds-clamped substring access (listed in
         SAFE_SUBSTR_FILES) must not reintroduce raw `.substr(`.
  CD001  src/core, src/text and src/relational are the deterministic engine:
         byte-identical output across thread counts and runs. Wall-clock and
         entropy sources (system_clock/steady_clock/high_resolution_clock,
         rand/srand, random_device, mt19937, this_thread::get_id) are banned
         there; route timing through RunBudget / WallTimer (common/deadline.h)
         and randomness through the seeded helpers in common/rng.h.
  LK001  lock discipline: raw std sync primitives (std::mutex, shared_mutex,
         condition_variable, lock_guard, unique_lock, ...) are banned outside
         src/common/annotations.h — use the annotated Mutex / SharedMutex /
         MutexLock / ReaderLock / WriterLock so clang -Wthread-safety sees
         every acquisition. Additionally, every Mutex/SharedMutex member must
         be referenced by at least one MCSM_GUARDED_BY / MCSM_PT_GUARDED_BY /
         MCSM_REQUIRES / MCSM_ACQUIRE in the same file, or carry
         `// lint: allow(LK001): <why>` explaining what it protects.
  TH001  thread hygiene: no `.detach()` (detached threads outlive their state
         and make shutdown racy) and no `new std::thread` (raw ownership;
         use ThreadPool or a joined std::thread member).
  MO001  every non-seq_cst std::memory_order argument needs an adjacent
         `// ordering:` comment (within the preceding few lines) saying why
         the weaker order is sound. Keeps relaxed/acquire/release use audited.
  SI001  intrinsics headers (immintrin.h and friends) may be included from
         src/text/simd.cc only — the one SIMD funnel with runtime dispatch
         and scalar fallback. Everything else calls the kernels through
         text/simd.h, so instruction-set concerns (and the bit-identical
         determinism contract) stay in one audited file.
  TS001  the retired Table accessors (`.cell(`, `->cell(`, `.CellText(`,
         `->CellText(`) are banned outside relational/table_compat.h (the
         one-PR migration shim). Read through the view API instead —
         Column()/TextAt()/ValueAt()/IsNull(): views pin paged storage,
         the old reference-returning accessors could not.

Usage: tools/lint.py [--root DIR] [paths...]   (default: src/)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SUPPRESS_RE = re.compile(
    r"//\s*lint:\s*allow\((?P<rules>[A-Z0-9, ]+)\)(?::\s*(?P<why>\S.*))?")

# Files that must declare [[nodiscard]] on their main class.
NODISCARD_FILES = {
    "src/common/status.h": r"class\s+\[\[nodiscard\]\]\s+Status",
    "src/common/result.h": r"class\s+\[\[nodiscard\]\]\s+Result",
}

# Files where SafeSubstr replaced raw substring access (rule SS001).
SAFE_SUBSTR_FILES = {
    "src/text/alignment.cc",
    "src/text/lcs.cc",
    "src/core/recipe.cc",
    "src/core/formula.cc",
    "src/relational/pattern.cc",
}

# Directories whose output must be byte-identical across runs (rule CD001).
DETERMINISTIC_DIRS = ("src/core/", "src/text/", "src/relational/")

# The one file allowed to spell raw std sync primitives (rule LK001): it
# wraps them in the annotated capability types everything else must use.
SYNC_WRAPPER_FILE = "src/common/annotations.h"

# The one file allowed to include intrinsics headers (rule SI001): the SIMD
# dispatch funnel. Everything else goes through text/simd.h.
SIMD_FUNNEL_FILE = "src/text/simd.cc"

# The one file allowed to spell the retired Table accessors (rule TS001):
# the one-PR compatibility shim that wraps them as copying free functions.
TABLE_COMPAT_FILE = "src/relational/table_compat.h"

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
VALUE_CALL_RE = re.compile(r"\.\s*value\s*\(\s*\)")
SUBSTR_RE = re.compile(r"\.\s*substr\s*\(")
# Evidence within the lookback window that the access is guarded.
VALUE_GUARD_RE = re.compile(
    r"\.ok\s*\(\s*\)|MCSM_ASSIGN_OR_RETURN|MCSM_CHECK_OK|MCSM_RETURN_IF_ERROR"
    r"|ASSERT_TRUE|ASSERT_OK|EXPECT_TRUE"
)
VALUE_GUARD_LOOKBACK = 12

CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|std::random_device|std::mt19937|std::minstd_rand"
    r"|(?<![\w:])s?rand\s*\("
    r"|this_thread::get_id"
)
RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
# A Mutex/SharedMutex data-member declaration (possibly mutable). Local
# guards (MutexLock lock(mu_);) do not match: they have a parenthesized
# initializer, not a bare `;`.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+(\w+)\s*;")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
NEW_THREAD_RE = re.compile(r"\bnew\s+std::thread\b")
MEMORY_ORDER_RE = re.compile(
    r"\bmemory_order(?:::|_)(?:relaxed|acquire|release|acq_rel|consume)\b")
ORDERING_COMMENT_RE = re.compile(r"//.*ordering:")
MEMORY_ORDER_LOOKBACK = 6
# x86 intrinsics headers: the umbrella immintrin/x86intrin, the per-ISA
# *mmintrin family (xmmintrin, emmintrin, smmintrin, nmmintrin, ...), and
# avx*intrin. Matched on the RAW line: quoted includes are blanked by
# strip_code, and angle-bracket includes must be caught either way.
INTRINSICS_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s*[<"](?:[a-z]+mmintrin|immintrin|x86intrin'
    r'|x86gprintrin|avx[a-z0-9]*intrin)\.h[>"]')

# Retired Table accessor spellings (rule TS001). Member access only — a
# free function or declaration named cell()/CellText() does not match.
TABLE_ACCESSOR_RE = re.compile(r"(?:\.|->)\s*(?:cell|CellText)\s*\(")

RAW_STRING_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R$')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> list[str]:
    """Per-line source with comments and all literal kinds blanked out.

    Handles // comments, /* */ block comments (multi-line), "..." strings
    with escapes, '...' character literals (digit separators like 1'000'000
    are left alone), and R"delim(...)delim" raw strings (multi-line). The
    returned list has exactly one entry per source line, so indices map
    one-to-one onto line numbers.
    """
    lines: list[str] = []
    cur: list[str] = []
    mode = "code"  # code | line | block | str | chr
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            lines.append("".join(cur))
            cur = []
            if mode == "line":
                mode = "code"
            i += 1
            continue
        if mode == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                mode = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                cur.append(" ")
                i += 2
                continue
            if c == '"':
                if RAW_STRING_PREFIX_RE.search("".join(cur[-3:])):
                    # Raw string: find the custom delimiter, then skip to the
                    # matching )delim" — escapes are inert inside.
                    open_paren = text.find("(", i + 1)
                    delim = text[i + 1:open_paren] if open_paren != -1 else ""
                    terminator = ")" + delim + '"'
                    end = (text.find(terminator, open_paren + 1)
                           if open_paren != -1 else -1)
                    cur.append('""')
                    if end == -1:
                        break  # unterminated: blank the rest of the file
                    for k in range(i, end):
                        if text[k] == "\n":
                            lines.append("".join(cur))
                            cur = []
                    i = end + len(terminator)
                    continue
                mode = "str"
                cur.append('"')
                i += 1
                continue
            if c == "'":
                prev = cur[-1] if cur else ""
                if prev.isalnum() or prev == "_":
                    cur.append(c)  # digit separator / suffix, not a char
                    i += 1
                    continue
                mode = "chr"
                cur.append("'")
                i += 1
                continue
            cur.append(c)
            i += 1
            continue
        if mode == "line":
            i += 1
            continue
        if mode == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                mode = "code"
                i += 2
                continue
            i += 1
            continue
        # String and char literal modes: swallow escapes (including a
        # backslash-newline splice, which must still produce a line break).
        if c == "\\":
            if i + 1 < n and text[i + 1] == "\n":
                lines.append("".join(cur))
                cur = []
            i += 2
            continue
        if mode == "str" and c == '"':
            cur.append('"')
            mode = "code"
        elif mode == "chr" and c == "'":
            cur.append("'")
            mode = "code"
        i += 1
    if cur or not text.endswith("\n"):
        lines.append("".join(cur))
    return lines


def suppressed(raw_line: str, rule: str, *, need_rationale: bool = False) -> bool:
    m = SUPPRESS_RE.search(raw_line)
    if not m or rule not in [r.strip() for r in m.group("rules").split(",")]:
        return False
    return bool(m.group("why")) if need_rationale else True


def lint_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Finding(rel, 0, "IO", f"unreadable: {err}")]
    lines = text.splitlines()
    code = strip_code(text)
    if len(code) < len(lines):  # defensive: never let parity break indexing
        code += [""] * (len(lines) - len(code))
    findings: list[Finding] = []

    # ND001 — required [[nodiscard]] declarations.
    pattern = NODISCARD_FILES.get(rel)
    if pattern is not None and not re.search(pattern, text):
        findings.append(
            Finding(rel, 1, "ND001",
                    f"expected declaration matching /{pattern}/ — "
                    "do not drop the [[nodiscard]] annotation"))

    in_common = rel.startswith("src/common/")
    check_substr = rel in SAFE_SUBSTR_FILES
    deterministic = rel.startswith(DETERMINISTIC_DIRS)
    sync_wrapper = rel == SYNC_WRAPPER_FILE
    simd_funnel = rel == SIMD_FUNNEL_FILE
    table_compat = rel == TABLE_COMPAT_FILE

    for i, raw in enumerate(lines, start=1):
        cl = code[i - 1]

        # AS001 — bare assert outside common/.
        if not in_common and ASSERT_RE.search(cl):
            if not suppressed(raw, "AS001"):
                findings.append(
                    Finding(rel, i, "AS001",
                            "bare assert(); use MCSM_CHECK or MCSM_DCHECK "
                            "from common/check.h"))

        # VD001 — unchecked .value() access.
        if VALUE_CALL_RE.search(cl) and not in_common:
            window = "\n".join(
                code[max(0, i - 1 - VALUE_GUARD_LOOKBACK):i])
            if not VALUE_GUARD_RE.search(window):
                if not suppressed(raw, "VD001"):
                    findings.append(
                        Finding(rel, i, "VD001",
                                ".value() without a visible ok() guard in the "
                                f"previous {VALUE_GUARD_LOOKBACK} lines; test "
                                "ok(), use MCSM_ASSIGN_OR_RETURN, or mark "
                                "// lint: allow(VD001)"))

        # SS001 — raw substr in SafeSubstr-adopted files.
        if check_substr and SUBSTR_RE.search(cl):
            if not suppressed(raw, "SS001"):
                findings.append(
                    Finding(rel, i, "SS001",
                            "raw .substr() in a SafeSubstr-adopted file; use "
                            "mcsm::SafeSubstr (clamping, never throws)"))

        # CD001 — nondeterminism sources in the deterministic engine.
        if deterministic and CLOCK_RE.search(cl):
            if not suppressed(raw, "CD001"):
                findings.append(
                    Finding(rel, i, "CD001",
                            "wall-clock/entropy source in deterministic code; "
                            "route timing through RunBudget or WallTimer "
                            "(common/deadline.h) and randomness through "
                            "common/rng.h"))

        # LK001 (a) — raw std sync primitives outside the wrapper header.
        if not sync_wrapper and RAW_SYNC_RE.search(cl):
            if not suppressed(raw, "LK001", need_rationale=True):
                findings.append(
                    Finding(rel, i, "LK001",
                            "raw std sync primitive; use the annotated types "
                            "from common/annotations.h (Mutex, SharedMutex, "
                            "MutexLock, ReaderLock, WriterLock) so clang "
                            "-Wthread-safety sees the acquisition, or mark "
                            "// lint: allow(LK001): <why>"))

        # LK001 (b) — every Mutex member must guard something, visibly.
        member = MUTEX_MEMBER_RE.match(cl)
        if member and not sync_wrapper:
            name = member.group(1)
            guard_ref = re.search(
                r"MCSM_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)"
                r"|MCSM_REQUIRES(?:_SHARED)?\([^)]*\b" + re.escape(name) + r"\b"
                r"|MCSM_ACQUIRE(?:_SHARED)?\([^)]*\b" + re.escape(name) + r"\b",
                text)
            if guard_ref is None:
                if not suppressed(raw, "LK001", need_rationale=True):
                    findings.append(
                        Finding(rel, i, "LK001",
                                f"mutex member '{name}' guards nothing: no "
                                "MCSM_GUARDED_BY/MCSM_REQUIRES/MCSM_ACQUIRE "
                                "references it in this file; annotate the "
                                "data it protects or mark "
                                "// lint: allow(LK001): <why>"))

        # TH001 — thread hygiene.
        if DETACH_RE.search(cl) or NEW_THREAD_RE.search(cl):
            if not suppressed(raw, "TH001"):
                findings.append(
                    Finding(rel, i, "TH001",
                            "detached or raw-owned thread; use ThreadPool or "
                            "a joined std::thread member (detach makes "
                            "shutdown racy, new std::thread leaks ownership)"))

        # SI001 — intrinsics headers only in the SIMD funnel.
        if not simd_funnel and INTRINSICS_INCLUDE_RE.search(raw):
            if not suppressed(raw, "SI001"):
                findings.append(
                    Finding(rel, i, "SI001",
                            "intrinsics header outside src/text/simd.cc; "
                            "call the dispatched kernels in text/simd.h "
                            "instead of spelling instruction sets here"))

        # TS001 — retired Table accessors outside the compat shim.
        if not table_compat and TABLE_ACCESSOR_RE.search(cl):
            if not suppressed(raw, "TS001"):
                findings.append(
                    Finding(rel, i, "TS001",
                            "retired Table accessor (.cell()/.CellText()); "
                            "read through the view API — Column()/TextAt()/"
                            "ValueAt()/IsNull() — or, as a one-PR crutch, "
                            "the copying helpers in relational/table_compat.h"))

        # MO001 — non-seq_cst memory orders need an adjacent rationale.
        if MEMORY_ORDER_RE.search(cl):
            window = lines[max(0, i - MEMORY_ORDER_LOOKBACK):i]
            if not any(ORDERING_COMMENT_RE.search(w) for w in window):
                if not suppressed(raw, "MO001"):
                    findings.append(
                        Finding(rel, i, "MO001",
                                "non-seq_cst memory order without an "
                                "// ordering: comment in the previous "
                                f"{MEMORY_ORDER_LOOKBACK} lines; say why the "
                                "weaker order is sound"))

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/)")
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    root = root.resolve()
    targets = [root / p for p in args.paths] if args.paths else [root / "src"]

    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(p for p in target.rglob("*")
                                if p.suffix in {".h", ".cc", ".cpp"}))
        elif target.is_file():
            files.append(target)
        else:
            print(f"lint.py: no such path: {target}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(root, f))

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
