#!/usr/bin/env python3
"""Custom lint for the mcsm error-handling discipline.

Rules (each suppressible on a specific line with `// lint: allow(<RULE>)`):

  ND001  src/common/status.h and src/common/result.h must keep their
         [[nodiscard]] class annotations (the compiler enforces call sites;
         this guards the declarations themselves).
  AS001  bare assert() is banned outside src/common/ — use MCSM_CHECK /
         MCSM_DCHECK from common/check.h, which print context and fire in
         sanitizer builds.
  VD001  ValueOrDie-style access: `.value()` / `*result` on a Result must be
         dominated by an ok() test, MCSM_ASSIGN_OR_RETURN, or MCSM_CHECK_OK
         within the surrounding lines. This is a heuristic (line-based, not
         AST-based); suppress deliberate uses with the marker above.
  SS001  files that adopted bounds-clamped substring access (listed in
         SAFE_SUBSTR_FILES) must not reintroduce raw `.substr(`.

Usage: tools/lint.py [--root DIR] [paths...]   (default: src/)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SUPPRESS_RE = re.compile(r"//\s*lint:\s*allow\((?P<rules>[A-Z0-9, ]+)\)")

# Files that must declare [[nodiscard]] on their main class.
NODISCARD_FILES = {
    "src/common/status.h": r"class\s+\[\[nodiscard\]\]\s+Status",
    "src/common/result.h": r"class\s+\[\[nodiscard\]\]\s+Result",
}

# Files where SafeSubstr replaced raw substring access (rule SS001).
SAFE_SUBSTR_FILES = {
    "src/text/alignment.cc",
    "src/text/lcs.cc",
    "src/core/recipe.cc",
    "src/core/formula.cc",
    "src/relational/pattern.cc",
}

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
VALUE_CALL_RE = re.compile(r"\.\s*value\s*\(\s*\)")
SUBSTR_RE = re.compile(r"\.\s*substr\s*\(")
# Evidence within the lookback window that the access is guarded.
VALUE_GUARD_RE = re.compile(
    r"\.ok\s*\(\s*\)|MCSM_ASSIGN_OR_RETURN|MCSM_CHECK_OK|MCSM_RETURN_IF_ERROR"
    r"|ASSERT_TRUE|ASSERT_OK|EXPECT_TRUE"
)
VALUE_GUARD_LOOKBACK = 12

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so patterns match code only."""
    return COMMENT_RE.sub("", STRING_RE.sub('""', line))


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    return bool(m) and rule in [r.strip() for r in m.group("rules").split(",")]


def lint_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Finding(rel, 0, "IO", f"unreadable: {err}")]
    lines = text.splitlines()
    findings: list[Finding] = []

    # ND001 — required [[nodiscard]] declarations.
    pattern = NODISCARD_FILES.get(rel)
    if pattern is not None and not re.search(pattern, text):
        findings.append(
            Finding(rel, 1, "ND001",
                    f"expected declaration matching /{pattern}/ — "
                    "do not drop the [[nodiscard]] annotation"))

    in_common = rel.startswith("src/common/")
    check_substr = rel in SAFE_SUBSTR_FILES

    for i, raw in enumerate(lines, start=1):
        code = strip_noise(raw)

        # AS001 — bare assert outside common/.
        if not in_common and ASSERT_RE.search(code):
            if not suppressed(raw, "AS001"):
                findings.append(
                    Finding(rel, i, "AS001",
                            "bare assert(); use MCSM_CHECK or MCSM_DCHECK "
                            "from common/check.h"))

        # VD001 — unchecked .value() access.
        if VALUE_CALL_RE.search(code) and not in_common:
            window = "\n".join(
                strip_noise(l)
                for l in lines[max(0, i - 1 - VALUE_GUARD_LOOKBACK):i])
            if not VALUE_GUARD_RE.search(window):
                if not suppressed(raw, "VD001"):
                    findings.append(
                        Finding(rel, i, "VD001",
                                ".value() without a visible ok() guard in the "
                                f"previous {VALUE_GUARD_LOOKBACK} lines; test "
                                "ok(), use MCSM_ASSIGN_OR_RETURN, or mark "
                                "// lint: allow(VD001)"))

        # SS001 — raw substr in SafeSubstr-adopted files.
        if check_substr and SUBSTR_RE.search(code):
            if not suppressed(raw, "SS001"):
                findings.append(
                    Finding(rel, i, "SS001",
                            "raw .substr() in a SafeSubstr-adopted file; use "
                            "mcsm::SafeSubstr (clamping, never throws)"))

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/)")
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    root = root.resolve()
    targets = [root / p for p in args.paths] if args.paths else [root / "src"]

    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(p for p in target.rglob("*")
                                if p.suffix in {".h", ".cc", ".cpp"}))
        elif target.is_file():
            files.append(target)
        else:
            print(f"lint.py: no such path: {target}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(root, f))

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
