#!/usr/bin/env python3
"""Fixture-driven self-test for tools/lint.py.

Every file under tests/lint_fixtures/ mirrors a src/-relative path (the
analyzer scopes several rules by path, so e.g. a fixture at
tests/lint_fixtures/src/text/alignment.cc exercises the SS001 file list).
Lines that must produce a finding carry an exact-line marker:

    int x = rand();  // expect: CD001

The test runs lint_file with the fixture tree as the root and asserts the
finding set equals the marker set — every expected finding fires on its
marked line, and nothing else fires (so suppressions and stripped
comments/strings/raw-strings are verified to stay silent). It also asserts
strip_code preserves line structure for every fixture.

Exit status: 0 OK, 1 mismatch.
"""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
FIXTURES = TOOLS_DIR.parent / "tests" / "lint_fixtures"

EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<rules>[A-Z0-9, ]+)")


def load_lint():
    spec = importlib.util.spec_from_file_location("mcsm_lint",
                                                  TOOLS_DIR / "lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main() -> int:
    lint = load_lint()
    files = sorted(p for p in FIXTURES.rglob("*")
                   if p.suffix in {".h", ".cc", ".cpp"})
    if not files:
        print(f"lint_selftest: no fixtures under {FIXTURES}", file=sys.stderr)
        return 1

    failures: list[str] = []
    for path in files:
        rel = path.relative_to(FIXTURES).as_posix()
        text = path.read_text(encoding="utf-8")

        # The scanner must never drift from the file's physical lines —
        # every finding's line number depends on this.
        stripped = lint.strip_code(text)
        n_lines = len(text.splitlines())
        if len(stripped) != n_lines:
            failures.append(
                f"{rel}: strip_code returned {len(stripped)} lines for a "
                f"{n_lines}-line file")
            continue

        expected: set[tuple[str, int, str]] = set()
        for i, line in enumerate(text.splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group("rules").split(","):
                    expected.add((rel, i, rule.strip()))

        got = {(f.path, f.line, f.rule)
               for f in lint.lint_file(FIXTURES, path)}

        for miss in sorted(expected - got):
            failures.append(
                f"{miss[0]}:{miss[1]}: expected {miss[2]}, linter was silent")
        for extra in sorted(got - expected):
            failures.append(
                f"{extra[0]}:{extra[1]}: unexpected finding {extra[2]}")

    if failures:
        print("\n".join(failures))
        print(f"lint_selftest: FAIL ({len(failures)} problem(s) across "
              f"{len(files)} fixtures)", file=sys.stderr)
        return 1
    print(f"lint_selftest: OK ({len(files)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
