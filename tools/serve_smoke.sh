#!/usr/bin/env bash
# Smoke test for the discovery service daemon (examples/mcsm_serve): boots
# the server on an ephemeral port, registers two tables, submits a job,
# polls it to completion, verifies the index cache shows a hit on a second
# identical job, runs a traced job end-to-end (trace endpoint validated with
# check_trace.py, explain field present), checks the deprecated unversioned
# aliases still answer (with a Deprecation header), exercises 429
# backpressure, and checks graceful SIGTERM drain (exit 0 with queued work
# finished). Run from anywhere:
#
#   tools/serve_smoke.sh <path-to-mcsm_serve>
#
# Designed to run under ASan/UBSan in CI — any sanitizer report fails the
# server process and therefore the script.
set -euo pipefail

SERVE_BIN=${1:?usage: serve_smoke.sh <path-to-mcsm_serve>}
WORKDIR=$(mktemp -d)
SERVER_PID=""
SLOW_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; [ -n "$SLOW_PID" ] && kill "$SLOW_PID" 2>/dev/null; rm -rf "$WORKDIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# http VERB PATH [BODY] -> sets $HTTP_STATUS and $BODY (no subshell, so the
# variables survive).
http() {
  local verb=$1 path=$2 payload=${3:-}
  HTTP_STATUS=$(curl -s -o "$WORKDIR/resp" -w '%{http_code}' -X "$verb" \
                ${payload:+-d "$payload"} "http://127.0.0.1:$PORT$path")
  BODY=$(cat "$WORKDIR/resp")
}

# --- boot -------------------------------------------------------------------
"$SERVE_BIN" --port 0 --port-file "$WORKDIR/port" \
             --job-workers 2 --max-queue 2 >"$WORKDIR/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORKDIR/port" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/serve.log"; fail "server died at boot"; }
  sleep 0.1
done
[ -s "$WORKDIR/port" ] || fail "server never wrote --port-file"
PORT=$(cat "$WORKDIR/port")
echo "server up on port $PORT (pid $SERVER_PID)"

http GET /v1/healthz
[ "$HTTP_STATUS" = 200 ] || fail "healthz returned $HTTP_STATUS"
echo "$BODY" | grep -q '"ok"' || fail "healthz body: $BODY"
echo "$BODY" | grep -q '"schema_version":1' || fail "no schema_version: $BODY"

# --- deprecated unversioned aliases -----------------------------------------
# The pre-/v1 paths answer identically but carry a Deprecation header.
curl -s -D "$WORKDIR/headers" -o "$WORKDIR/resp" "http://127.0.0.1:$PORT/healthz"
grep -qi '^Deprecation: true' "$WORKDIR/headers" \
  || fail "unversioned /healthz lacks Deprecation header"
grep -q '"ok"' "$WORKDIR/resp" || fail "unversioned /healthz body broken"
curl -s -D "$WORKDIR/headers" -o /dev/null "http://127.0.0.1:$PORT/v1/healthz"
grep -qi '^Deprecation' "$WORKDIR/headers" \
  && fail "/v1/healthz must not carry a Deprecation header"
echo "deprecated aliases: OK"

# --- register tables --------------------------------------------------------
http POST /v1/tables '{"name":"people","csv":"first,last\nhenry,warner\nanna,smith\nbob,jones\ncarol,white\ndave,brown\neve,black\n"}'
[ "$HTTP_STATUS" = 200 ] || fail "POST /tables people -> $HTTP_STATUS: $BODY"
http POST /v1/tables '{"name":"logins","csv":"login\nhwarner\nasmith\nbjones\ncwhite\ndbrown\neblack\n"}'
[ "$HTTP_STATUS" = 200 ] || fail "POST /tables logins -> $HTTP_STATUS: $BODY"

# --- per-table storage stats ------------------------------------------------
http GET /v1/tables/people
[ "$HTTP_STATUS" = 200 ] || fail "GET /tables/people -> $HTTP_STATUS: $BODY"
echo "$BODY" | grep -q '"storage"' || fail "no storage stats: $BODY"
echo "$BODY" | grep -q '"encoding":"' || fail "no encoding: $BODY"
echo "$BODY" | grep -q '"rows":6' || fail "wrong rows in: $BODY"
http GET /v1/tables/nope
[ "$HTTP_STATUS" = 404 ] || fail "GET /tables/nope -> $HTTP_STATUS (want 404)"
echo "table storage stats: OK"

# --- submit + poll a job ----------------------------------------------------
http POST /v1/jobs '{"source_table":"people","target_table":"logins","target_column":0,"deadline_ms":30000}'
[ "$HTTP_STATUS" = 202 ] || fail "POST /jobs -> $HTTP_STATUS: $BODY"
JOB_ID=$(echo "$BODY" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
[ -n "$JOB_ID" ] || fail "no job id in: $BODY"

STATE=""
for _ in $(seq 1 100); do
  http GET "/v1/jobs/$JOB_ID"
  STATE=$(echo "$BODY" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && fail "job failed: $BODY"
  sleep 0.1
done
[ "$STATE" = done ] || fail "job never finished (state=$STATE)"
echo "$BODY" | grep -q '"formula":"first\[1-1\]last\[1-n\]"' \
  || fail "unexpected formula: $BODY"
echo "job $JOB_ID done: $BODY"

# --- cache hit on the second identical job ----------------------------------
http POST /v1/jobs '{"source_table":"people","target_table":"logins","target_column":0}'
[ "$HTTP_STATUS" = 202 ] || fail "second POST /jobs -> $HTTP_STATUS"
JOB2=$(echo "$BODY" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
for _ in $(seq 1 100); do
  http GET "/v1/jobs/$JOB2"
  echo "$BODY" | grep -q '"state":"done"' && break
  sleep 0.1
done
echo "$BODY" | grep -q '"state":"done"' || fail "second job never finished: $BODY"

http GET /v1/metrics
[ "$HTTP_STATUS" = 200 ] || fail "GET /metrics -> $HTTP_STATUS"
HITS=$(echo "$BODY" | sed -n 's/^mcsm_index_cache_hits \([0-9]*\)$/\1/p')
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] || fail "expected cache hits > 0; metrics: $BODY"
echo "cache hits: $HITS"

# --- bulk-translate job: discover-then-translate, then replay by program ----
http POST /v1/jobs '{"mode":"translate","source_table":"people","target_table":"logins","target_column":0,"deadline_ms":30000}'
[ "$HTTP_STATUS" = 202 ] || fail "translate POST /v1/jobs -> $HTTP_STATUS: $BODY"
TR_ID=$(echo "$BODY" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
for _ in $(seq 1 100); do
  http GET "/v1/jobs/$TR_ID"
  echo "$BODY" | grep -q '"state":"done"' && break
  echo "$BODY" | grep -q '"state":"failed"' && fail "translate job failed: $BODY"
  sleep 0.1
done
echo "$BODY" | grep -q '"state":"done"' || fail "translate job never finished: $BODY"
echo "$BODY" | grep -q '"mode":"translate"' || fail "no translate mode: $BODY"
echo "$BODY" | grep -q '"rows_translated":6' \
  || fail "expected 6 translated rows: $BODY"
echo "$BODY" | grep -q '"program_wire":"' || fail "no program_wire: $BODY"
PROGRAM_HEX=$(echo "$BODY" | sed -n 's/.*"program_wire":"\([0-9a-f]*\)".*/\1/p')
[ -n "$PROGRAM_HEX" ] || fail "could not extract program hex: $BODY"
# Replay the saved program without a target table (discovery skipped).
http POST /v1/jobs "{\"mode\":\"translate\",\"source_table\":\"people\",\"program\":\"$PROGRAM_HEX\"}"
[ "$HTTP_STATUS" = 202 ] || fail "replay POST /v1/jobs -> $HTTP_STATUS: $BODY"
REPLAY_ID=$(echo "$BODY" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
for _ in $(seq 1 100); do
  http GET "/v1/jobs/$REPLAY_ID"
  echo "$BODY" | grep -q '"state":"done"' && break
  echo "$BODY" | grep -q '"state":"failed"' && fail "replay job failed: $BODY"
  sleep 0.1
done
echo "$BODY" | grep -q '"rows_translated":6' \
  || fail "replay expected 6 translated rows: $BODY"
# A corrupt program is a 400 at submit, not a failed job.
http POST /v1/jobs '{"mode":"translate","source_table":"people","program":"deadbeef"}'
[ "$HTTP_STATUS" = 400 ] || fail "corrupt program -> $HTTP_STATUS (want 400): $BODY"
http GET /v1/metrics
TRANSLATED=$(echo "$BODY" | sed -n 's/^mcsm_translate_rows_total \([0-9]*\)$/\1/p')
[ -n "$TRANSLATED" ] && [ "$TRANSLATED" -ge 12 ] \
  || fail "expected mcsm_translate_rows_total >= 12; metrics: $BODY"
echo "translate jobs: OK (rows_total=$TRANSLATED)"

# --- traced job: trace endpoint + explain + check_trace.py ------------------
http POST /v1/jobs '{"source_table":"people","target_table":"logins","target_column":0,"trace":true}'
[ "$HTTP_STATUS" = 202 ] || fail "traced POST /v1/jobs -> $HTTP_STATUS: $BODY"
TRACED_ID=$(echo "$BODY" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
for _ in $(seq 1 100); do
  http GET "/v1/jobs/$TRACED_ID"
  echo "$BODY" | grep -q '"state":"done"' && break
  sleep 0.1
done
echo "$BODY" | grep -q '"state":"done"' || fail "traced job never finished: $BODY"
echo "$BODY" | grep -q '"traced":true' || fail "snapshot not marked traced: $BODY"
echo "$BODY" | grep -q '"explain":' || fail "no explain field on traced job: $BODY"

http GET "/v1/jobs/$TRACED_ID/trace"
[ "$HTTP_STATUS" = 200 ] || fail "GET trace -> $HTTP_STATUS: $BODY"
echo "$BODY" > "$WORKDIR/trace.json"
python3 "$(dirname "$0")/check_trace.py" "$WORKDIR/trace.json" \
  || fail "check_trace.py rejected the service trace"

# Untraced jobs 404 on the trace endpoint.
http GET "/v1/jobs/$JOB_ID/trace"
[ "$HTTP_STATUS" = 404 ] || fail "untraced job trace -> $HTTP_STATUS (want 404)"

http GET /v1/metrics
echo "$BODY" | grep -q '^mcsm_jobs_traced 1$' || fail "mcsm_jobs_traced != 1"
TRACE_EVENTS=$(echo "$BODY" | sed -n 's/^mcsm_trace_events_total \([0-9]*\)$/\1/p')
[ -n "$TRACE_EVENTS" ] && [ "$TRACE_EVENTS" -gt 0 ] || fail "trace events counter empty"
echo "traced job: OK ($TRACE_EVENTS events)"

# --- 429 backpressure -------------------------------------------------------
# A second server with the service.job delay failpoint armed: every job
# stalls 500ms before running, so 1 worker + 1 queue slot saturate
# deterministically and later submits must bounce with 429.
SLOW_PID=""
MCSM_FAILPOINTS="service.job=delay:500ms" \
  "$SERVE_BIN" --port 0 --port-file "$WORKDIR/slow_port" \
               --job-workers 1 --max-queue 1 >"$WORKDIR/slow.log" 2>&1 &
SLOW_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORKDIR/slow_port" ] && break
  sleep 0.1
done
[ -s "$WORKDIR/slow_port" ] || fail "slow server never wrote --port-file"
MAIN_PORT=$PORT
PORT=$(cat "$WORKDIR/slow_port")
http POST /v1/tables '{"name":"people","csv":"first,last\nhenry,warner\nanna,smith\n"}'
[ "$HTTP_STATUS" = 200 ] || fail "slow server POST /tables -> $HTTP_STATUS"
http POST /v1/tables '{"name":"logins","csv":"login\nhwarner\nasmith\n"}'
[ "$HTTP_STATUS" = 200 ] || fail "slow server POST /tables -> $HTTP_STATUS"
SAW_429=0
for _ in $(seq 1 6); do
  http POST /v1/jobs '{"source_table":"people","target_table":"logins","target_column":0}'
  [ "$HTTP_STATUS" = 429 ] && SAW_429=1
done
[ "$SAW_429" = 1 ] || fail "expected a 429 from the saturated queue"
http GET /v1/metrics
REJECTED=$(echo "$BODY" | sed -n 's/^mcsm_jobs_rejected \([0-9]*\)$/\1/p')
[ -n "$REJECTED" ] && [ "$REJECTED" -gt 0 ] || fail "rejected counter not incremented"
echo "backpressure: $REJECTED rejected with 429"

# SIGTERM with jobs still queued/delayed: the drain must finish them all and
# exit 0 — this is the chaos leg of the drain contract.
kill -TERM "$SLOW_PID"
for _ in $(seq 1 200); do
  kill -0 "$SLOW_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SLOW_PID" 2>/dev/null; then
  kill -9 "$SLOW_PID"; fail "slow server did not drain within 20s of SIGTERM"
fi
wait "$SLOW_PID" && RC=0 || RC=$?
SLOW_PID=""
[ "$RC" = 0 ] || { cat "$WORKDIR/slow.log"; fail "slow server exited $RC after SIGTERM"; }
grep -q "drained; bye" "$WORKDIR/slow.log" || fail "slow server drain banner missing"
PORT=$MAIN_PORT

# --- graceful drain ---------------------------------------------------------
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  kill -9 "$SERVER_PID"; fail "server did not drain within 10s of SIGTERM"
fi
wait "$SERVER_PID" && RC=0 || RC=$?
SERVER_PID=""
[ "$RC" = 0 ] || { cat "$WORKDIR/serve.log"; fail "server exited $RC after SIGTERM"; }
grep -q "drained; bye" "$WORKDIR/serve.log" || { cat "$WORKDIR/serve.log"; fail "drain banner missing from log"; }

echo "serve smoke: OK"
